"""Pipeline subsystem tests: fingerprints, artifact store, executor.

Covers the contract the evaluation layer depends on:

* fingerprint stability (same inputs → same key, including across
  processes) and sensitivity (kernel source / machine description /
  toolchain / flags changes each produce a different key);
* store round-trips, atomic layout, corrupted/truncated-entry recovery;
* per-task failure isolation with structured error records;
* parallel-vs-serial sweep equivalence (identical ``EvalResult`` sets,
  byte-identical serialised payloads, all modes).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.kernels import kernel_source
from repro.machine import build_machine
from repro.pipeline import (
    ArtifactStore,
    EvalResult,
    SweepTask,
    TaskError,
    compile_cached,
    describe_machine,
    fingerprint,
    parse_subset,
    run_tasks,
    sweep,
    task_fingerprint,
    toolchain_fingerprint,
)

#: small matrix that still spans all three core styles (in canonical
#: preset order -- sweep results always iterate in that order)
MACHINES = ("mblaze-3", "m-vliw-2", "m-tta-2")
KERNELS = ("mips", "motion")

GOOD_SOURCE = "int main(void){ int i; int s=0; for(i=0;i<6;i++) s+=i; return s-15; }"
SELF_CHECK_FAIL = "int main(void){ return 3; }"
COMPILE_ERROR = "int main(void){ return ;;; }"

RESULT = EvalResult(
    machine="m-tta-2",
    kernel="mips",
    exit_code=0,
    cycles=55775,
    instruction_count=565,
    instruction_width=90,
    fmax_mhz=201.2,
)


class TestFingerprint:
    def test_deterministic_in_process(self):
        machine = build_machine("m-tta-2")
        source = kernel_source("mips")
        assert fingerprint(machine, source) == fingerprint(machine, source)

    def test_stable_across_processes(self):
        """PYTHONHASHSEED must never leak into keys: recompute the same
        fingerprint in fresh interpreters with different hash seeds."""
        machine = build_machine("m-tta-2")
        here = fingerprint(machine, GOOD_SOURCE)
        code = (
            "from repro.machine import build_machine\n"
            "from repro.pipeline import fingerprint\n"
            f"print(fingerprint(build_machine('m-tta-2'), {GOOD_SOURCE!r}))\n"
        )
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            assert out.stdout.strip() == here

    def test_kernel_source_change_invalidates(self):
        machine = build_machine("m-tta-2")
        base = fingerprint(machine, GOOD_SOURCE)
        assert fingerprint(machine, GOOD_SOURCE + " ") != base

    def test_machine_change_invalidates(self):
        base = fingerprint(build_machine("m-tta-2"), GOOD_SOURCE)
        other = fingerprint(build_machine("p-tta-2"), GOOD_SOURCE)
        assert base != other
        # ... and a structural edit to the same preset changes the key
        machine = build_machine("m-tta-2")
        edited = replace(machine, simm_bits=machine.simm_bits + 1)
        assert fingerprint(edited, GOOD_SOURCE) != base

    def test_flags_and_toolchain_invalidate(self):
        machine = build_machine("m-tta-2")
        base = fingerprint(machine, GOOD_SOURCE)
        assert fingerprint(machine, GOOD_SOURCE, mode="checked") != base
        assert fingerprint(machine, GOOD_SOURCE, optimize=False) != base
        assert fingerprint(machine, GOOD_SOURCE, toolchain="other") != base

    def test_engine_version_default_is_current(self):
        from repro.sim import SIM_ENGINE_VERSION

        machine = build_machine("m-tta-2")
        assert fingerprint(machine, GOOD_SOURCE) == fingerprint(
            machine, GOOD_SOURCE, engine_version=SIM_ENGINE_VERSION
        )

    def test_engine_version_change_invalidates(self):
        """A sim-engine semantics bump must retire every cached artifact
        the old engine produced, even with identical sources/flags."""
        from repro.sim import SIM_ENGINE_VERSION

        machine = build_machine("m-tta-2")
        base = fingerprint(machine, GOOD_SOURCE, toolchain="pinned")
        bumped = fingerprint(
            machine,
            GOOD_SOURCE,
            toolchain="pinned",
            engine_version=SIM_ENGINE_VERSION + 1,
        )
        assert bumped != base

    def test_engine_version_change_invalidates_store_entries(self, tmp_path):
        """End-to-end: an artifact stored under the old engine version is
        never served once the engine version token changes."""
        from repro.sim import SIM_ENGINE_VERSION

        store = ArtifactStore(tmp_path)
        machine = build_machine("m-tta-2")
        old_key = fingerprint(
            machine, GOOD_SOURCE, toolchain="pinned",
            engine_version=SIM_ENGINE_VERSION,
        )
        store.store_result(old_key, RESULT)
        assert store.load_result(old_key) == RESULT
        new_key = fingerprint(
            machine, GOOD_SOURCE, toolchain="pinned",
            engine_version=SIM_ENGINE_VERSION + 1,
        )
        assert new_key != old_key
        assert store.load_result(new_key) is None

    def test_describe_machine_is_json_canonical(self):
        for name in MACHINES:
            desc = describe_machine(build_machine(name))
            round_tripped = json.loads(json.dumps(desc, sort_keys=True))
            assert round_tripped == desc

    def test_toolchain_fingerprint_is_hex_digest(self):
        digest = toolchain_fingerprint()
        assert len(digest) == 64
        int(digest, 16)

    def test_task_fingerprint_matches_fingerprint(self):
        task = SweepTask(machine="m-tta-2", kernel="x", source=GOOD_SOURCE)
        assert task_fingerprint(task) == fingerprint(
            build_machine("m-tta-2"), GOOD_SOURCE
        )


class TestParseSubset:
    def test_none_gives_all(self):
        assert parse_subset(None, ("a", "b"), "x") == ("a", "b")

    def test_comma_string_and_canonical_order(self):
        assert parse_subset("b,a", ("a", "b", "c"), "x") == ("a", "b")
        assert parse_subset(["b", "b"], ("a", "b"), "x") == ("b",)

    def test_unknown_and_empty_raise(self):
        with pytest.raises(ValueError, match="unknown kernel 'z'"):
            parse_subset("z", ("a",), "kernel")
        with pytest.raises(ValueError, match="empty"):
            parse_subset(" , ", ("a",), "kernel")


class TestArtifactStore:
    def test_result_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ab" * 32
        store.store_result(key, RESULT)
        assert store.load_result(key) == RESULT
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_result("cd" * 32) is None
        assert store.stats.misses == 1

    def test_malformed_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.result_path("../../etc/passwd")

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "empty", "flipped_payload", "bad_json"],
    )
    def test_corrupt_entry_detected_dropped_and_rebuilt(self, tmp_path, corruption):
        store = ArtifactStore(tmp_path)
        key = "ef" * 32
        path = store.store_result(key, RESULT)
        blob = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        elif corruption == "garbage":
            path.write_bytes(b"\x00\xff not an artifact")
        elif corruption == "empty":
            path.write_bytes(b"")
        elif corruption == "flipped_payload":
            path.write_bytes(blob[:-3] + bytes([blob[-3] ^ 0xFF]) + blob[-2:])
        elif corruption == "bad_json":
            header, _, _ = blob.partition(b"\n")
            import hashlib

            payload = b'{"schema": 999}'
            header = b"repro-artifact sha256=" + hashlib.sha256(
                payload
            ).hexdigest().encode()
            path.write_bytes(header + b"\n" + payload)
        assert store.load_result(key) is None
        assert not path.exists(), "corrupt entry must be deleted"
        assert store.stats.corrupt_dropped == 1
        # the caller rebuilds transparently:
        store.store_result(key, RESULT)
        assert store.load_result(key) == RESULT

    def test_no_partial_files_after_write(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store_result("12" * 32, RESULT)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_stale_tmp_files_collected_on_init(self, tmp_path):
        """A writer killed between mkstemp and os.replace leaks its .tmp
        file; store init removes old orphans but spares fresh ones (a
        concurrent writer may still be mid-flight)."""
        import os

        store = ArtifactStore(tmp_path)
        key = "ab" * 32
        store.store_result(key, RESULT)
        entry_dir = store.result_path(key).parent
        stale = entry_dir / f".{key}.json.xyz123.tmp"
        stale.write_bytes(b"half-written")
        os.utime(stale, (0, 0))  # ancient mtime: well past the threshold
        fresh = entry_dir / f".{key}.json.abc456.tmp"
        fresh.write_bytes(b"mid-flight")

        reopened = ArtifactStore(tmp_path)
        assert not stale.exists(), "stale temp file must be collected"
        assert fresh.exists(), "fresh temp file must be spared"
        assert reopened.stats.stale_tmp_removed == 1
        # the real entry survives and temp files never count as entries
        assert reopened.load_result(key) == RESULT
        assert reopened.entry_count()["results"] == 1

    def test_clear_and_entry_count(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store_result("aa" * 32, RESULT)
        store.store_result("bb" * 32, RESULT)
        assert store.entry_count()["results"] == 2
        assert store.clear() == 2
        assert store.entry_count()["results"] == 0

    def test_blob_round_trip_and_stats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "0d" * 32
        payload = bytes(range(256)) * 4
        store.store_blob(key, payload)
        assert store.stats.blob_writes == 1
        assert store.stats.writes == 1, "blob writes count as writes too"
        assert store.entry_count()["blobs"] == 1
        assert store.load_blob(key) == payload
        assert store.load_blob("1e" * 32) is None
        assert store.stats.misses == 1

    def test_blob_corruption_detected_dropped_and_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "2f" * 32
        payload = b"\x7fELF not really a shared object"
        path = store.store_blob(key, payload)
        blob = path.read_bytes()
        path.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        assert store.load_blob(key) is None
        assert not path.exists(), "corrupt blob must be deleted"
        assert store.stats.corrupt_dropped == 1
        # the caller rebuilds transparently:
        store.store_blob(key, payload)
        assert store.load_blob(key) == payload

    def test_program_round_trip_and_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        compiled = compile_cached("m-tta-1", "mips", store=store)
        # second call is a pickle round-trip from disk
        warm = compile_cached("m-tta-1", "mips", store=store)
        assert warm.instruction_count == compiled.instruction_count
        assert store.entry_count()["programs"] == 1
        [path] = (tmp_path / "programs").rglob("*.pkl")
        path.write_bytes(path.read_bytes()[:40])
        rebuilt = compile_cached("m-tta-1", "mips", store=store)
        assert rebuilt.instruction_count == compiled.instruction_count


class TestExecutor:
    def test_failure_isolation_and_structured_records(self, tmp_path):
        outcome = sweep(
            machines=("m-tta-1",),
            sources={
                "good": GOOD_SOURCE,
                "selfcheck": SELF_CHECK_FAIL,
                "syntax": COMPILE_ERROR,
            },
            store=ArtifactStore(tmp_path),
            retries=0,
        )
        # the failing pairs did not kill the sweep ...
        assert set(outcome.results) == {("m-tta-1", "good")}
        assert outcome.results[("m-tta-1", "good")].exit_code == 0
        # ... and surfaced as structured error records
        assert set(outcome.errors) == {
            ("m-tta-1", "selfcheck"),
            ("m-tta-1", "syntax"),
        }
        selfcheck = outcome.errors[("m-tta-1", "selfcheck")]
        assert selfcheck.error_type == "AssertionError"
        assert "self-check failed" in selfcheck.message
        assert "Traceback" in selfcheck.traceback
        assert selfcheck.attempts == 1
        assert outcome.stats.failed == 2 and outcome.stats.computed == 1

    def test_bounded_retries_recorded(self, tmp_path):
        outcome = sweep(
            machines=("m-tta-1",),
            sources={"boom": SELF_CHECK_FAIL},
            store=ArtifactStore(tmp_path),
            retries=2,
        )
        assert outcome.errors[("m-tta-1", "boom")].attempts == 3
        assert outcome.stats.retried == 2

    def test_parallel_failure_isolation(self, tmp_path):
        outcome = sweep(
            machines=("m-tta-1",),
            sources={"good": GOOD_SOURCE, "syntax": COMPILE_ERROR},
            store=ArtifactStore(tmp_path),
            jobs=2,
            retries=0,
        )
        assert ("m-tta-1", "good") in outcome.results
        assert outcome.errors[("m-tta-1", "syntax")].error_type == "CompileError"

    def test_run_tasks_preserves_order(self):
        tasks = [
            SweepTask(machine="m-tta-1", kernel=f"k{i}", source=GOOD_SOURCE)
            for i in range(3)
        ]
        outcomes = run_tasks(tasks, jobs=2)
        assert [o.kernel for o in outcomes] == ["k0", "k1", "k2"]
        assert all(isinstance(o, EvalResult) for o in outcomes)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([], retries=-1)


class TestSweepCaching:
    def test_warm_sweep_serves_from_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = sweep(machines=("m-tta-1",), kernels=("mips",), store=store)
        assert cold.stats.computed == 1 and cold.stats.cache_hits == 0
        warm = sweep(machines=("m-tta-1",), kernels=("mips",), store=store)
        assert warm.stats.cache_hits == 1 and warm.stats.computed == 0
        assert warm.results == cold.results

    def test_no_cache_never_touches_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        sweep(
            machines=("m-tta-1",), kernels=("mips",), store=store, use_cache=False
        )
        assert store.entry_count()["results"] == 0

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        store = ArtifactStore(tmp_path)
        sweep(machines=("m-tta-1",), kernels=("mips",), store=store)
        # poison the entry, then refresh must overwrite it with the truth
        task = SweepTask(
            machine="m-tta-1", kernel="mips", source=kernel_source("mips")
        )
        key = task_fingerprint(task)
        store.store_result(key, replace(RESULT, machine="m-tta-1", cycles=1))
        refreshed = sweep(
            machines=("m-tta-1",), kernels=("mips",), store=store, refresh=True
        )
        assert refreshed.stats.computed == 1
        assert store.load_result(key).cycles == refreshed.results[
            ("m-tta-1", "mips")
        ].cycles > 1

    def test_errors_are_not_cached(self, tmp_path):
        store = ArtifactStore(tmp_path)
        outcome = sweep(
            machines=("m-tta-1",),
            sources={"boom": SELF_CHECK_FAIL},
            store=store,
            retries=0,
        )
        assert outcome.stats.failed == 1
        assert store.entry_count()["results"] == 0


class TestParallelSerialEquivalence:
    @pytest.fixture(scope="class")
    def serial_checked(self, tmp_path_factory):
        return sweep(
            machines=MACHINES,
            kernels=KERNELS,
            mode="checked",
            jobs=1,
            store=ArtifactStore(tmp_path_factory.mktemp("serial")),
        )

    def test_parallel_fast_matches_serial_checked(
        self, serial_checked, tmp_path_factory
    ):
        """The acceptance bar: a parallel fast-mode sweep must produce
        byte-identical EvalResult sets to the serial checked path."""
        parallel = sweep(
            machines=MACHINES,
            kernels=KERNELS,
            mode="fast",
            jobs=4,
            store=ArtifactStore(tmp_path_factory.mktemp("parallel")),
        )
        assert serial_checked.ok and parallel.ok
        assert list(parallel.results) == list(serial_checked.results)
        serial_bytes = json.dumps(
            [r.to_dict() for r in serial_checked.results.values()], sort_keys=True
        ).encode()
        parallel_bytes = json.dumps(
            [r.to_dict() for r in parallel.results.values()], sort_keys=True
        ).encode()
        assert parallel_bytes == serial_bytes

    def test_parallel_checked_matches_too(self, serial_checked, tmp_path_factory):
        parallel = sweep(
            machines=MACHINES,
            kernels=KERNELS,
            mode="checked",
            jobs=3,
            store=ArtifactStore(tmp_path_factory.mktemp("pchecked")),
        )
        assert parallel.results == serial_checked.results

    def test_ordering_is_canonical(self, serial_checked):
        """Results iterate in canonical (preset-order machine, kernel)
        order regardless of job count, cache state or request order."""
        expected = [(m, k) for m in MACHINES for k in KERNELS]
        assert list(serial_checked.results) == expected
        shuffled = sweep(
            machines=tuple(reversed(MACHINES)),
            kernels=tuple(reversed(KERNELS)),
            use_cache=False,
        )
        assert list(shuffled.results) == expected


class TestRunnerCompat:
    """The legacy ``repro.eval.runner`` surface rides on the pipeline."""

    def test_run_sweep_memo_identity_and_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import runner

        runner.sweep_cache_clear()
        first = runner.run_sweep(machines=("m-tta-1",), kernels=("mips",))
        again = runner.run_sweep(machines=("m-tta-1",), kernels=("mips",))
        key = ("m-tta-1", "mips")
        assert again[key] is first[key]
        runner.sweep_cache_clear()
        cleared = runner.run_sweep(machines=("m-tta-1",), kernels=("mips",))
        # same value (served from disk), fresh object (memo was dropped)
        assert cleared[key] == first[key]
        assert cleared[key] is not first[key]
        runner.sweep_cache_clear()

    def test_run_sweep_raises_assertion_error_on_failure(self, tmp_path):
        from repro.eval.runner import SweepFailure
        from repro.pipeline.sweep import sweep as real_sweep

        outcome = real_sweep(
            machines=("m-tta-1",),
            sources={"boom": SELF_CHECK_FAIL},
            store=ArtifactStore(tmp_path),
            retries=0,
        )
        with pytest.raises(AssertionError, match="self-check failed"):
            outcome.raise_on_error()
        with pytest.raises(SweepFailure):
            outcome.raise_on_error()


def _hammer_json_writer(root, key, tag, rounds):
    """Child-process worker: repeatedly overwrite one json entry."""
    store = ArtifactStore(root)
    for round_no in range(rounds):
        store.store_json(key, {"tag": tag, "round": round_no,
                               "payload": list(range(32))})
    return tag


class TestStoreConcurrentWriters:
    """Many writers hammering one key must never expose a torn or
    corrupt entry to readers: every load during the storm returns one of
    the exact payloads some writer wrote (atomic tmp+rename, last write
    wins), and the self-verifying headers never fire."""

    KEY = "ab" * 32

    def test_threaded_writers_readers_see_only_valid_results(self, tmp_path):
        import threading

        writers, rounds = 8, 25
        stop = threading.Event()
        write_errors: list[BaseException] = []
        seen: list[EvalResult] = []
        read_errors: list[BaseException] = []

        def write(tag: int) -> None:
            store = ArtifactStore(tmp_path)
            try:
                for round_no in range(rounds):
                    store.store_result(
                        self.KEY, replace(RESULT, cycles=1000 + tag,
                                          extras={"moves": round_no}),
                    )
            except BaseException as exc:  # pragma: no cover
                write_errors.append(exc)

        def read() -> None:
            store = ArtifactStore(tmp_path)
            try:
                while not stop.is_set():
                    result = store.load_result(self.KEY)
                    if result is not None:
                        seen.append(result)
                assert store.stats.corrupt_dropped == 0
            except BaseException as exc:  # pragma: no cover
                read_errors.append(exc)

        threads = [threading.Thread(target=write, args=(tag,))
                   for tag in range(writers)]
        readers = [threading.Thread(target=read) for _ in range(4)]
        for thread in readers + threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not write_errors and not read_errors
        assert seen  # the readers actually observed the storm
        valid_cycles = {1000 + tag for tag in range(writers)}
        for result in seen:
            # each observation is exactly one writer's payload, whole
            assert result.cycles in valid_cycles
            assert set(result.extras) == {"moves"}
            assert result.machine == RESULT.machine
        # the settled entry is one of the final-round payloads
        final = ArtifactStore(tmp_path).load_result(self.KEY)
        assert final.cycles in valid_cycles
        assert final.extras["moves"] == rounds - 1

    def test_process_writers_last_write_wins_no_corruption(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        procs, rounds = 4, 12
        with ctx.Pool(processes=procs) as pool:
            async_results = [
                pool.apply_async(
                    _hammer_json_writer, (str(tmp_path), self.KEY, tag, rounds)
                )
                for tag in range(procs)
            ]
            reader = ArtifactStore(tmp_path)
            observed = 0
            while not all(r.ready() for r in async_results):
                payload = reader.load_json(self.KEY)
                if payload is not None:
                    observed += 1
                    assert payload["tag"] in range(procs)
                    assert payload["payload"] == list(range(32))
            tags = [r.get(timeout=30) for r in async_results]
        assert sorted(tags) == list(range(procs))
        assert reader.stats.corrupt_dropped == 0
        final = reader.load_json(self.KEY)
        assert final["tag"] in range(procs)
        assert final["round"] == rounds - 1


class TestTaskWallTime:
    """``run_tasks`` surfaces per-task wall time without perturbing any
    persisted or serialised payload."""

    def _task(self) -> SweepTask:
        return SweepTask(machine="m-tta-1", kernel="walltime",
                         source=GOOD_SOURCE)

    def test_wall_ms_in_extras_but_not_in_to_dict(self):
        outcome = run_tasks([self._task()])[0]
        assert isinstance(outcome, EvalResult)
        assert outcome.extras["_wall_ms"] > 0
        serialised = outcome.to_dict()
        assert "_wall_ms" not in serialised["extras"]
        # round-trip drops the transient key entirely
        restored = EvalResult.from_dict(
            json.loads(json.dumps(outcome.to_dict()))
        )
        assert "_wall_ms" not in restored.extras
        assert restored.cycles == outcome.cycles

    def test_traced_outcome_carries_wall_ms(self):
        from repro.pipeline.executor import TracedOutcome

        traced = run_tasks([self._task()], trace=True)[0]
        assert isinstance(traced, TracedOutcome)
        assert traced.wall_ms is not None and traced.wall_ms > 0
        assert traced.outcome.extras["_wall_ms"] > 0
        assert isinstance(traced.trace, dict)

    def test_store_payload_unaffected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        outcome = run_tasks([self._task()])[0]
        key = "cd" * 32
        store.store_result(key, outcome)
        loaded = store.load_result(key)
        assert "_wall_ms" not in loaded.extras
        assert loaded.cycles == outcome.cycles

    def test_failed_task_wall_time_not_required(self, tmp_path):
        outcome = sweep(
            machines=("m-tta-1",),
            sources={"syntax": COMPILE_ERROR},
            store=ArtifactStore(tmp_path),
            retries=0,
        )
        error = outcome.errors[("m-tta-1", "syntax")]
        assert isinstance(error, TaskError)  # no extras, no crash


class TestJsonSchemaVersions:
    """``--json`` documents carry an explicit schema_version field."""

    def test_sweep_to_dict_has_schema_version(self, tmp_path):
        from repro.pipeline import SWEEP_JSON_SCHEMA

        outcome = sweep(
            machines=("m-tta-1",), kernels=("mips",),
            store=ArtifactStore(tmp_path),
        )
        doc = outcome.to_dict()
        assert doc["schema_version"] == SWEEP_JSON_SCHEMA == 1
        assert list(doc)[0] == "schema_version"

    def test_fuzz_report_to_dict_has_schema_version(self):
        from repro.fuzz import FUZZ_JSON_SCHEMA
        from repro.fuzz.harness import FuzzReport

        doc = FuzzReport(seed=7, count=0).to_dict()
        assert doc["schema_version"] == FUZZ_JSON_SCHEMA == 1
        assert list(doc)[0] == "schema_version"


class TestIncrementalWritebackAndResume:
    """Fresh results persist as each pair completes, so a killed sweep or
    exploration campaign resumes from everything already measured."""

    class _Killed(RuntimeError):
        pass

    def test_sweep_writes_back_before_progress(self, tmp_path):
        store = ArtifactStore(tmp_path)
        seen: list[int] = []

        def killer(done, total, task, outcome):
            seen.append(store.entry_count()["results"])
            if done == 2:
                raise self._Killed()

        with pytest.raises(self._Killed):
            sweep(
                machines=("m-tta-1",),
                sources={"a": GOOD_SOURCE, "b": GOOD_SOURCE + " "},
                store=store,
                progress=killer,
            )
        # both completed pairs were persisted before the kill landed
        assert seen == [1, 2]
        assert store.entry_count()["results"] == 2

    def test_killed_explore_campaign_resumes_as_cache_hits(self, tmp_path):
        from repro.explore import ExploreConfig, run_explore

        cfg = ExploreConfig(
            base=("m-tta-1",),
            kernels=("mips",),
            generations=1,
            population=3,
            seed=5,
            mode="fast",
        )
        store = ArtifactStore(tmp_path / "store")
        calls: list[tuple[str, str]] = []

        def killer(done, total, task, outcome):
            calls.append(task.pair)
            if len(calls) == 2:  # die mid-generation, after 2 of 4 pairs
                raise self._Killed()

        with pytest.raises(self._Killed):
            run_explore(cfg, store=store, progress=killer)
        persisted = store.entry_count()["results"]
        assert persisted == 2

        resumed = run_explore(cfg, store=store)
        # the pairs measured before the kill are served from the store
        assert resumed.stats.cache_hits >= persisted
        assert resumed.stats.computed >= 1

        # same seed, fresh store: byte-identical frontier payload
        fresh = run_explore(cfg, store=ArtifactStore(tmp_path / "other"))
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            fresh.to_dict(), sort_keys=True
        )
