"""Unit and property tests for the 32-bit operation semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import MASK32, evaluate, sext8, sext16, to_signed, to_unsigned
from repro.isa.operations import ALU_OPS, CU_OPS, LSU_OPS, OPS

u32 = st.integers(min_value=0, max_value=MASK32)


class TestConversions:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(2**31)

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(2**32 + 7) == 7

    def test_sext8(self):
        assert sext8(0x7F) == 0x7F
        assert sext8(0x80) == 0xFFFFFF80
        assert sext8(0x1FF) == 0xFFFFFFFF

    def test_sext16(self):
        assert sext16(0x7FFF) == 0x7FFF
        assert sext16(0x8000) == 0xFFFF8000

    @given(u32)
    def test_signed_unsigned_roundtrip(self, x):
        assert to_unsigned(to_signed(x)) == x


class TestEvaluate:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 0xFFFFFFFF, 1, 0),
            ("sub", 0, 1, 0xFFFFFFFF),
            ("mul", 0x10000, 0x10000, 0),
            ("mul", 7, 6, 42),
            ("and", 0xF0F0, 0x0FF0, 0x00F0),
            ("ior", 0xF000, 0x000F, 0xF00F),
            ("xor", 0xFFFF, 0xF0F0, 0x0F0F),
            ("eq", 5, 5, 1),
            ("eq", 5, 6, 0),
            ("gt", 1, 0xFFFFFFFF, 1),  # 1 > -1 signed
            ("gtu", 1, 0xFFFFFFFF, 0),  # 1 < max unsigned
            ("shl", 1, 31, 0x80000000),
            ("shl", 1, 32, 1),  # shift amount mod 32
            ("shr", 0x80000000, 1, 0xC0000000),  # arithmetic
            ("shru", 0x80000000, 1, 0x40000000),  # logical
            ("sxhw", 0x8000, 0, 0xFFFF8000),
            ("sxqw", 0x80, 0, 0xFFFFFF80),
        ],
    )
    def test_known_values(self, op, a, b, expected):
        assert evaluate(op, (a, b)) == expected

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            evaluate("ldw", (0, 0))

    @given(u32, u32)
    def test_add_matches_python(self, a, b):
        assert evaluate("add", (a, b)) == (a + b) % 2**32

    @given(u32, u32)
    def test_sub_matches_python(self, a, b):
        assert evaluate("sub", (a, b)) == (a - b) % 2**32

    @given(u32, u32)
    def test_mul_matches_python(self, a, b):
        assert evaluate("mul", (a, b)) == (a * b) % 2**32

    @given(u32, u32)
    def test_gt_matches_python(self, a, b):
        assert evaluate("gt", (a, b)) == int(to_signed(a) > to_signed(b))

    @given(u32, u32)
    def test_shr_matches_python(self, a, b):
        assert evaluate("shr", (a, b)) == (to_signed(a) >> (b & 31)) % 2**32

    @given(u32, u32)
    def test_commutative_ops(self, a, b):
        for op in ("add", "mul", "and", "ior", "xor", "eq"):
            assert evaluate(op, (a, b)) == evaluate(op, (b, a))

    @given(u32)
    def test_xor_self_inverse(self, a):
        assert evaluate("xor", (evaluate("xor", (a, 0xDEADBEEF)), 0xDEADBEEF)) == a


class TestOpTables:
    def test_table1_op_counts(self):
        # Table I: 14 ALU operations, 8 LSU operations.
        assert len(ALU_OPS) == 14
        assert len(LSU_OPS) == 8

    def test_latencies_match_table1(self):
        assert OPS["add"].latency == 1
        assert OPS["mul"].latency == 3
        assert OPS["shl"].latency == 2
        assert OPS["ldw"].latency == 3
        assert OPS["stw"].latency == 0

    def test_stores_have_no_result(self):
        for name in ("stw", "sth", "stq"):
            assert not OPS[name].has_result

    def test_control_ops_flagged(self):
        for name in ("jump", "cjump", "cjumpz", "call", "ret"):
            assert OPS[name].is_control

    def test_memory_flags(self):
        assert OPS["ldw"].reads_mem and not OPS["ldw"].writes_mem
        assert OPS["stw"].writes_mem and not OPS["stw"].reads_mem
