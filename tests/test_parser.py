"""Parser unit tests."""

from __future__ import annotations

import pytest

from repro.frontend import CompileError, parse
from repro.frontend.cst_ast import (
    ArrType,
    Assign,
    Binary,
    CallExpr,
    Cast,
    DeclStmt,
    For,
    FuncDef,
    GlobalDecl,
    If,
    IncDec,
    Index,
    IntType,
    Num,
    PtrType,
    Return,
    Ternary,
    Unary,
    While,
)


def parse_expr(expr_src: str):
    unit = parse(f"int main(void) {{ return {expr_src}; }}")
    ret = unit.items[0].body.stmts[0]
    assert isinstance(ret, Return)
    return ret.value


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_precedence_shift_vs_relational(self):
        e = parse_expr("1 << 2 < 3")
        assert e.op == "<" and e.left.op == "<<"

    def test_precedence_bitand_vs_equality(self):
        # C quirk: == binds tighter than &.
        e = parse_expr("a & b == c")
        assert e.op == "&" and e.right.op == "=="

    def test_right_assoc_assignment(self):
        unit = parse("int main(void){ int a; int b; a = b = 1; return 0; }")
        stmt = unit.items[0].body.stmts[2]
        assign = stmt.expr
        assert isinstance(assign, Assign)
        assert isinstance(assign.value, Assign)

    def test_ternary(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e, Ternary)
        assert isinstance(e.els, Ternary)

    def test_unary_chain(self):
        e = parse_expr("-~!x")
        assert isinstance(e, Unary) and e.op == "-"
        assert e.operand.op == "~"
        assert e.operand.operand.op == "!"

    def test_cast(self):
        e = parse_expr("(unsigned char)(x + 1)")
        assert isinstance(e, Cast)
        assert e.target_type == IntType(8, False)

    def test_cast_vs_parens(self):
        e = parse_expr("(x) + 1")
        assert isinstance(e, Binary) and e.op == "+"

    def test_index_chain(self):
        e = parse_expr("m[1][2]")
        assert isinstance(e, Index) and isinstance(e.base, Index)

    def test_call_args(self):
        e = parse_expr("f(1, g(2), 3)")
        assert isinstance(e, CallExpr) and len(e.args) == 3
        assert isinstance(e.args[1], CallExpr)

    def test_postfix_incdec(self):
        e = parse_expr("x++")
        assert isinstance(e, IncDec) and not e.prefix

    def test_prefix_incdec(self):
        e = parse_expr("--x")
        assert isinstance(e, IncDec) and e.prefix and e.op == "-"

    def test_compound_assign(self):
        unit = parse("int g; int main(void){ g <<= 2; return 0; }")
        assign = unit.items[1].body.stmts[0].expr
        assert isinstance(assign, Assign) and assign.op == "<<"

    def test_string_concatenation(self):
        e = parse_expr('"ab" "cd"')
        assert e.data == b"abcd\0"


class TestDeclarations:
    def test_pointer_declarator(self):
        unit = parse("int *p;")
        decl = unit.items[0].decl
        assert isinstance(decl.ty, PtrType)

    def test_array_2d(self):
        unit = parse("int m[3][4];")
        ty = unit.items[0].decl.ty
        assert isinstance(ty, ArrType) and ty.count == 3
        assert isinstance(ty.elem, ArrType) and ty.elem.count == 4
        assert ty.size == 48

    def test_constant_dimension_expr(self):
        unit = parse("int buf[4 * 8];")
        assert unit.items[0].decl.ty.count == 32

    def test_multiple_declarators(self):
        unit = parse("int a, *b, c[4];")
        assert len(unit.items) == 3

    def test_function_decl_and_def(self):
        unit = parse("int f(int x); int f(int x) { return x; }")
        assert unit.items[0].body is None
        assert unit.items[1].body is not None

    def test_unsigned_types(self):
        unit = parse("unsigned char a; unsigned short b; unsigned c;")
        tys = [item.decl.ty for item in unit.items]
        assert tys == [IntType(8, False), IntType(16, False), IntType(32, False)]

    def test_array_param_decays(self):
        unit = parse("int f(int a[10]) { return a[0]; }")
        assert isinstance(unit.items[0].params[0].ty, PtrType)


class TestStatements:
    def test_for_with_decl(self):
        unit = parse("int main(void){ for (int i = 0; i < 4; i++) ; return 0; }")
        stmt = unit.items[0].body.stmts[0]
        assert isinstance(stmt, For) and isinstance(stmt.init, DeclStmt)

    def test_dangling_else(self):
        unit = parse("int main(void){ if (1) if (2) ; else ; return 0; }")
        outer = unit.items[0].body.stmts[0]
        assert isinstance(outer, If) and outer.els is None
        assert isinstance(outer.then, If) and outer.then.els is not None

    def test_while_and_do(self):
        unit = parse("int main(void){ while (1) break; do continue; while (0); return 0; }")
        assert isinstance(unit.items[0].body.stmts[0], While)


class TestParseErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "int main(void) { return 1 +; }",
            "int main(void) { if (1 { } return 0; }",
            "int main(void) { int x[; return 0; }",
            "int main(void) { return 0 }",
            "int 3x;",
            "int a[0];",
            "int main(void) {",
        ],
    )
    def test_rejects(self, src):
        with pytest.raises(CompileError):
            parse(src)
