"""Evaluation-side tests of the exploration engine: the monotonicity
oracle, generated-machine pipeline plumbing, Pareto selection and
campaign determinism."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.explore import (
    ExploreConfig,
    ExploreError,
    ParetoPoint,
    dominates,
    pareto_frontier,
    render_explore,
    run_explore,
)
from repro.machine import build_machine, machine_to_json, structural_name
from repro.machine.components import Bus
from repro.pipeline import SweepTask, execute_task, sweep_tasks, tasks_for_machines

TINY = "int main(void){ int i; int s=0; for(i=0;i<6;i++) s+=i; return s-15; }"


def _fewer_buses(machine, drop: int = 1):
    """A strict connectivity subgraph: the same machine minus *drop* of
    its (identical, fully-connected) buses."""
    kept = machine.buses[: len(machine.buses) - drop]
    pruned = replace(
        machine,
        buses=tuple(Bus(i, b.sources, b.destinations) for i, b in enumerate(kept)),
    )
    return replace(pruned, name=structural_name(pruned), description="pruned")


class TestGeneratedMachinePipeline:
    def test_execute_task_resolves_machine_desc(self):
        machine = _fewer_buses(build_machine("m-tta-2"))
        task = SweepTask(
            machine=machine.name,
            kernel="tiny",
            source=TINY,
            mode="fast",
            machine_desc=machine_to_json(machine),
        )
        result = execute_task(task)
        assert result.exit_code == 0
        assert result.machine == machine.name

    def test_named_task_for_unknown_machine_fails(self):
        task = SweepTask(machine="no-such-machine", kernel="tiny", source=TINY)
        with pytest.raises(KeyError):
            execute_task(task)

    def test_tasks_for_machines_mixes_presets_and_objects(self):
        machine = _fewer_buses(build_machine("m-tta-2"))
        tasks = tasks_for_machines([machine, "m-tta-1"], sources={"tiny": TINY})
        assert [t.machine for t in tasks] == [machine.name, "m-tta-1"]
        assert tasks[0].machine_desc is not None
        assert tasks[1].machine_desc is None
        outcome = sweep_tasks(tasks, use_cache=False)
        assert outcome.ok
        assert {r.exit_code for r in outcome.results.values()} == {0}

    def test_run_sweep_accepts_machine_objects(self):
        from repro.eval.runner import run_sweep, sweep_cache_clear

        machine = _fewer_buses(build_machine("m-tta-2"))
        sweep_cache_clear()
        results = run_sweep(machines=(machine, "m-tta-1"), kernels=("mips",))
        assert set(results) == {(machine.name, "mips"), ("m-tta-1", "mips")}
        # memoised: identical objects on the second call
        again = run_sweep(machines=(machine,), kernels=("mips",))
        assert again[(machine.name, "mips")] is results[(machine.name, "mips")]
        sweep_cache_clear()

    def test_tasks_for_machines_rejects_unknown_preset_names(self):
        with pytest.raises(ValueError, match="unknown machine"):
            tasks_for_machines(["no-such-machine"], sources={"tiny": TINY})


class TestMonotonicityOracle:
    """A machine whose connectivity is a strict subgraph of a preset's
    can never need *fewer* cycles: the scheduler only loses freedom."""

    @pytest.mark.parametrize("kernel", ("mips", "motion"))
    def test_fewer_buses_never_faster(self, kernel):
        from repro.kernels import kernel_source

        preset = build_machine("m-tta-2")
        pruned = _fewer_buses(preset, drop=1)
        source = kernel_source(kernel)
        tasks = tasks_for_machines(
            [preset, pruned], sources={kernel: source}, mode="fast"
        )
        outcome = sweep_tasks(tasks, use_cache=False)
        assert outcome.ok
        base = outcome.results[(preset.name, kernel)].cycles
        fewer = outcome.results[(pruned.name, kernel)].cycles
        assert fewer >= base


class TestPareto:
    def _pt(self, name, cycles, luts, fmax):
        return ParetoPoint(name, name, cycles, luts, fmax)

    def test_dominates_needs_strict_improvement(self):
        a = self._pt("a", 100.0, 1000, 200.0)
        same = self._pt("b", 100.0, 1000, 200.0)
        better = self._pt("c", 90.0, 1000, 200.0)
        assert not dominates(a, same)
        assert dominates(better, a)
        assert not dominates(a, better)

    def test_frontier_keeps_tradeoffs_drops_dominated(self):
        fast_big = self._pt("fast", 50.0, 2000, 150.0)
        small_slow = self._pt("small", 100.0, 900, 150.0)
        dominated = self._pt("bad", 120.0, 2100, 140.0)
        front = pareto_frontier([dominated, fast_big, small_slow])
        assert [p.name for p in front] == ["fast", "small"]

    def test_frontier_order_deterministic_and_deduped(self):
        a = self._pt("a", 50.0, 2000, 150.0)
        b = self._pt("b", 100.0, 900, 150.0)
        twin = ParetoPoint("a-again", "a", 50.0, 2000, 150.0)
        assert pareto_frontier([b, a, twin]) == pareto_frontier([a, twin, b])
        assert len(pareto_frontier([a, twin])) == 1


class TestCampaign:
    CFG = ExploreConfig(
        base=("m-tta-1",),
        kernels=("mips",),
        generations=1,
        population=3,
        seed=4,
        mode="fast",
    )

    def test_campaign_deterministic_without_cache(self):
        first = run_explore(self.CFG, use_cache=False)
        second = run_explore(self.CFG, use_cache=False)
        assert first.to_dict() == second.to_dict()
        assert first.frontier
        assert first.stats.evaluated >= 1

    def test_frontier_members_revalidate_and_rematerialise(self):
        from repro.machine import machine_from_dict, validate_machine

        result = run_explore(self.CFG, use_cache=False)
        for point in result.frontier:
            machine = machine_from_dict(result.machines[point.name])
            validate_machine(machine)
            assert structural_name(machine) == point.name or point.name in self.CFG.base

    def test_frontier_cycles_reproduce_on_reevaluation(self):
        from repro.machine import machine_from_dict

        result = run_explore(self.CFG, use_cache=False)
        point = result.frontier[0]
        machine = machine_from_dict(result.machines[point.name])
        tasks = tasks_for_machines([machine], self.CFG.kernels, mode=self.CFG.mode)
        outcome = sweep_tasks(tasks, use_cache=False)
        assert outcome.ok
        for kernel, cycles in point.per_kernel.items():
            assert outcome.results[(machine.name, kernel)].cycles == cycles

    def test_render_explore_mentions_frontier(self):
        result = run_explore(self.CFG, use_cache=False)
        text = render_explore(result)
        assert "Pareto frontier" in text
        assert result.frontier[0].name in text
        assert "core LUTs" in text

    def test_non_tta_base_rejected(self):
        cfg = replace(self.CFG, base=("mblaze-3",))
        with pytest.raises(ExploreError, match="TTA"):
            run_explore(cfg, use_cache=False)

    def test_unknown_base_rejected(self):
        cfg = replace(self.CFG, base=("nope",))
        with pytest.raises(KeyError):
            run_explore(cfg, use_cache=False)

    def test_bad_shape_rejected(self):
        with pytest.raises(ExploreError):
            run_explore(replace(self.CFG, population=0), use_cache=False)
