"""Tests for the assembly printer and the compression extension."""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.asmprint import format_program, program_statistics
from repro.compress import compress_program, per_slot_compression

SRC = """
int poly(int x){ return ((x * 3 + 1) * x - 7) & 0xFFFF; }
int main(void){
    int i; int acc = 0;
    for (i = 0; i < 12; i++) acc ^= poly(i);
    return acc & 0xFF;
}
"""


@pytest.fixture(scope="module", params=["mblaze-3", "m-vliw-2", "m-tta-2"])
def compiled(request):
    return compile_for_machine(compile_source(SRC), build_machine(request.param))


class TestAsmPrinter:
    def test_listing_covers_whole_program(self, compiled):
        text = format_program(compiled.program)
        # one line per instruction plus label lines
        body_lines = [l for l in text.splitlines() if not l.endswith(":")]
        assert len(body_lines) == len(compiled.program.instrs)

    def test_labels_present(self, compiled):
        text = format_program(compiled.program)
        assert "main:" in text
        assert "_start:" in text

    def test_window(self, compiled):
        text = format_program(compiled.program, start=0, count=3)
        body_lines = [l for l in text.splitlines() if not l.endswith(":")]
        assert len(body_lines) == 3

    def test_statistics(self, compiled):
        stats = program_statistics(compiled.program)
        assert stats["instructions"] > 0
        if compiled.program.style == "tta":
            assert 0.0 < stats["bus_fill"] <= 1.0
        elif compiled.program.style == "vliw":
            assert 0.0 < stats["slot_fill"] <= 1.0

    def test_tta_moves_render(self):
        program = compile_for_machine(
            compile_source(SRC), build_machine("m-tta-2")
        ).program
        text = format_program(program)
        assert "->" in text
        assert ".t" in text  # trigger moves carry opcodes


class TestCompression:
    def test_full_dictionary_is_lossless_accounting(self, compiled):
        report = compress_program(compiled.program)
        assert report.entries <= len(compiled.program.instrs)
        assert report.index_bits + report.dictionary_bits == report.total_bits
        assert report.original_bits > 0

    def test_per_slot_beats_or_matches_nothing_burned(self, compiled):
        report = per_slot_compression(compiled.program)
        assert report.entries > 0
        assert report.total_bits > 0

    def test_compression_helps_wide_tta_words(self):
        program = compile_for_machine(
            compile_source(SRC), build_machine("m-tta-3")
        ).program
        full = compress_program(program)
        slot = per_slot_compression(program)
        assert min(full.ratio, slot.ratio) < 1.0

    def test_nop_heavy_programs_compress_well(self):
        # delay-slot nops dominate small TTA programs; the dictionary
        # stores the nop word once
        program = compile_for_machine(
            compile_source("int main(void){ return 3; }"), build_machine("m-tta-2")
        ).program
        report = compress_program(program)
        assert report.ratio < 0.9
