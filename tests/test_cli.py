"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture()
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("int main(void){ int i; int s=0; for(i=0;i<6;i++) s+=i; return s-15; }")
    return str(path)


class TestCLI:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "m-tta-2" in out and "MHz" in out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        assert "sha" in capsys.readouterr().out

    def test_run_success(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "m-tta-1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "exit code : 0" in out
        assert "cycles" in out

    def test_run_nonzero_exit(self, tmp_path, capsys):
        path = tmp_path / "fail.mc"
        path.write_text("int main(void){ return 7; }")
        assert main(["run", str(path), "-m", "mblaze-3"]) == 1

    def test_run_mode_turbo(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "m-tta-1", "--mode", "turbo"]) == 0
        out = capsys.readouterr().out
        assert "engine    : turbo" in out
        assert "exit code : 0" in out

    def test_run_verify_conflicts_with_mode(self, minic_file, capsys):
        for mode in ("fast", "turbo"):
            assert main(
                ["run", minic_file, "-m", "m-tta-1", "--verify", "--mode", mode]
            ) == 2
            assert "cannot be combined with --mode" in capsys.readouterr().err
        # --verify --mode checked is redundant but consistent: allowed
        assert main(
            ["run", minic_file, "-m", "m-tta-1", "--verify", "--mode", "checked"]
        ) == 0

    def test_run_scalar_ignores_mode(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "mblaze-3", "--mode", "turbo"]) == 0
        assert "scalar (single engine; --mode ignored)" in capsys.readouterr().out

    def test_run_profile(self, minic_file, capsys):
        assert main(
            ["run", minic_file, "-m", "m-tta-2", "--mode", "turbo", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "hot blocks" in out and "trigger histogram" in out

    def test_run_profile_rejects_scalar_and_checked(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "mblaze-3", "--profile"]) == 2
        assert "TTA and VLIW cores only" in capsys.readouterr().err
        assert main(["run", minic_file, "-m", "m-tta-1", "--verify", "--profile"]) == 2
        assert "fast or turbo engine" in capsys.readouterr().err

    def test_asm(self, minic_file, capsys):
        assert main(["asm", minic_file, "-m", "m-tta-2", "--count", "10"]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out and "->" in out

    def test_synth(self, capsys):
        assert main(["synth", "m-vliw-3"]) == 0
        out = capsys.readouterr().out
        assert "core LUTs" in out

    def test_report_rejects_unknown_kernel(self, capsys):
        assert main(["report", "--kernels", "nope"]) == 2

    def test_report_rejects_unknown_machine(self, capsys):
        assert main(["report", "--machines", "nope"]) == 2
        assert "unknown machine" in capsys.readouterr().err


class TestSweepCLI:
    def test_sweep_subset(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--machines", "m-tta-1",
                "--kernels", "mips",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "m-tta-1" in captured.out and "cycles" in captured.out
        assert "1 computed" in captured.err
        # warm re-run serves from the store
        assert main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
             "--cache-dir", str(tmp_path), "-q"]
        ) == 0
        assert "1 cached" in capsys.readouterr().err

    def test_sweep_json_output(self, tmp_path, capsys):
        import json

        rc = main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
             "--cache-dir", str(tmp_path), "--json", "-q"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == []
        [result] = payload["results"]
        assert result["machine"] == "m-tta-1" and result["cycles"] > 0

    def test_sweep_clear_cache_and_no_cache(self, tmp_path, capsys):
        args = ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
                "--cache-dir", str(tmp_path), "-q"]
        assert main(args) == 0
        assert main(args + ["--clear-cache"]) == 0
        assert "cleared 1 cache entries" in capsys.readouterr().err
        assert main(args + ["--no-cache"]) == 0
        assert "computed" in capsys.readouterr().err

    def test_sweep_rejects_unknown_machine(self, capsys):
        assert main(["sweep", "--machines", "nope"]) == 2
        assert "unknown machine" in capsys.readouterr().err
