"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture()
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("int main(void){ int i; int s=0; for(i=0;i<6;i++) s+=i; return s-15; }")
    return str(path)


class TestCLI:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "m-tta-2" in out and "MHz" in out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        assert "sha" in capsys.readouterr().out

    def test_run_success(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "m-tta-1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "exit code : 0" in out
        assert "cycles" in out

    def test_run_nonzero_exit(self, tmp_path, capsys):
        path = tmp_path / "fail.mc"
        path.write_text("int main(void){ return 7; }")
        assert main(["run", str(path), "-m", "mblaze-3"]) == 1

    def test_run_mode_turbo(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "m-tta-1", "--mode", "turbo"]) == 0
        out = capsys.readouterr().out
        assert "engine    : turbo" in out
        assert "exit code : 0" in out

    def test_run_verify_conflicts_with_mode(self, minic_file, capsys):
        for mode in ("fast", "turbo"):
            assert main(
                ["run", minic_file, "-m", "m-tta-1", "--verify", "--mode", mode]
            ) == 2
            assert "cannot be combined with --mode" in capsys.readouterr().err
        # --verify --mode checked is redundant but consistent: allowed
        assert main(
            ["run", minic_file, "-m", "m-tta-1", "--verify", "--mode", "checked"]
        ) == 0

    def test_run_scalar_ignores_mode(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "mblaze-3", "--mode", "turbo"]) == 0
        assert "scalar (single engine; --mode ignored)" in capsys.readouterr().out

    def test_run_mode_batch(self, minic_file, capsys):
        assert main(
            ["run", minic_file, "-m", "m-tta-1", "--mode", "batch", "--batch", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine    : batch (8 lanes)" in out
        assert "exit code : 0" in out

    def test_run_batch_flag_requires_batch_mode(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "m-tta-1", "--batch", "4"]) == 2
        assert "--batch requires --mode batch" in capsys.readouterr().err
        assert main(
            ["run", minic_file, "-m", "m-tta-1", "--verify", "--batch", "4"]
        ) == 2
        assert "--batch requires --mode batch" in capsys.readouterr().err

    def test_run_batch_rejects_bad_lane_count(self, minic_file, capsys):
        assert main(
            ["run", minic_file, "-m", "m-tta-1", "--mode", "batch", "--batch", "0"]
        ) == 2
        assert "--batch must be >= 1" in capsys.readouterr().err

    def test_run_profile_rejects_batch(self, minic_file, capsys):
        assert main(
            ["run", minic_file, "-m", "m-tta-2", "--mode", "batch", "--profile"]
        ) == 2
        assert "fast, turbo or native engine" in capsys.readouterr().err

    def test_run_profile(self, minic_file, capsys):
        assert main(
            ["run", minic_file, "-m", "m-tta-2", "--mode", "turbo", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "hot blocks" in out and "trigger histogram" in out

    def test_run_profile_rejects_scalar_and_checked(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "mblaze-3", "--profile"]) == 2
        assert "TTA and VLIW cores only" in capsys.readouterr().err
        assert main(["run", minic_file, "-m", "m-tta-1", "--verify", "--profile"]) == 2
        assert "fast, turbo or native engine" in capsys.readouterr().err

    def test_asm(self, minic_file, capsys):
        assert main(["asm", minic_file, "-m", "m-tta-2", "--count", "10"]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out and "->" in out

    def test_synth(self, capsys):
        assert main(["synth", "m-vliw-3"]) == 0
        out = capsys.readouterr().out
        assert "core LUTs" in out

    def test_report_rejects_unknown_kernel(self, capsys):
        assert main(["report", "--kernels", "nope"]) == 2

    def test_report_rejects_unknown_machine(self, capsys):
        assert main(["report", "--machines", "nope"]) == 2
        assert "unknown machine" in capsys.readouterr().err


class TestSweepCLI:
    def test_sweep_subset(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--machines", "m-tta-1",
                "--kernels", "mips",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "m-tta-1" in captured.out and "cycles" in captured.out
        assert "1 computed" in captured.err
        # warm re-run serves from the store
        assert main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
             "--cache-dir", str(tmp_path), "-q"]
        ) == 0
        assert "1 cached" in capsys.readouterr().err

    def test_sweep_json_output(self, tmp_path, capsys):
        import json

        rc = main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
             "--cache-dir", str(tmp_path), "--json", "-q"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == []
        [result] = payload["results"]
        assert result["machine"] == "m-tta-1" and result["cycles"] > 0

    def test_sweep_clear_cache_and_no_cache(self, tmp_path, capsys):
        args = ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
                "--cache-dir", str(tmp_path), "-q"]
        assert main(args) == 0
        assert main(args + ["--clear-cache"]) == 0
        assert "cleared 1 cache entries" in capsys.readouterr().err
        assert main(args + ["--no-cache"]) == 0
        assert "computed" in capsys.readouterr().err

    def test_sweep_rejects_unknown_machine(self, capsys):
        assert main(["sweep", "--machines", "nope"]) == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_sweep_rejects_empty_subsets(self, capsys):
        # "" is an empty subset (an error), never "everything"
        assert main(["sweep", "--kernels", ""]) == 2
        assert "empty kernel subset" in capsys.readouterr().err
        assert main(["sweep", "--machines", ""]) == 2
        assert "empty machine subset" in capsys.readouterr().err

    def test_sweep_rejects_bad_jobs(self, capsys):
        for jobs in ("0", "-1"):
            assert main(["sweep", "--kernels", "mips", "--jobs", jobs]) == 2
            assert f"--jobs must be >= 1, got {jobs}" in capsys.readouterr().err

    def test_sweep_mode_batch(self, tmp_path, capsys):
        rc = main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
             "--mode", "batch", "--no-cache", "-q"]
        )
        assert rc == 0
        assert "cycles" in capsys.readouterr().out


class TestRunErrorPaths:
    def test_run_missing_file(self, capsys):
        assert main(["run", "/no/such/file.mc", "-m", "m-tta-1"]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "file.mc" in err

    def test_run_compile_error_is_reported_not_raised(self, tmp_path, capsys):
        path = tmp_path / "broken.mc"
        path.write_text("int main( { return 0; }")
        assert main(["run", str(path), "-m", "m-tta-1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_unknown_machine_is_an_argparse_error(self, minic_file, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["run", minic_file, "-m", "nope"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_asm_missing_file(self, capsys):
        assert main(["asm", "/no/such/file.mc", "-m", "m-tta-2"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestFuzzCLI:
    def _fuzz(self, tmp_path, *extra):
        return main(
            [
                "fuzz", "--seed", "3", "--count", "2",
                "--machines", "m-tta-1,mblaze-3",
                "--modes", "checked,fast",
                "--no-cache", "-q",
                "--corpus-dir", str(tmp_path / "corpus"),
                *extra,
            ]
        )

    def test_fuzz_clean_campaign(self, tmp_path, capsys):
        assert self._fuzz(tmp_path) == 0
        captured = capsys.readouterr()
        assert "fuzzed 2 kernels (seed 3)" in captured.err
        assert "4/4 cases ok" in captured.err
        assert "diverged" in captured.err

    def test_fuzz_json_report(self, tmp_path, capsys):
        import json

        assert self._fuzz(tmp_path, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["seed"] == 3
        assert payload["cases_total"] == 4
        assert payload["machines"] == ["mblaze-3", "m-tta-1"]
        assert payload["modes"] == ["checked", "fast"]
        assert payload["divergences"] == []

    def test_fuzz_smoke_preset(self, tmp_path, capsys):
        rc = main(
            ["fuzz", "--smoke", "--machines", "m-tta-1", "--count", "1",
             "--no-cache", "-q", "--corpus-dir", str(tmp_path / "corpus")]
        )
        assert rc == 0
        assert "fuzzed 1 kernels" in capsys.readouterr().err

    def test_fuzz_progress_lines(self, tmp_path, capsys):
        rc = main(
            ["fuzz", "--seed", "1", "--count", "1", "--machines", "m-tta-1",
             "--modes", "fast", "--no-cache",
             "--corpus-dir", str(tmp_path / "corpus")]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "[   1/1]" in err and "ok" in err

    def test_fuzz_rejects_negative_count(self, capsys):
        assert main(["fuzz", "--count", "-2"]) == 2
        assert "--count must be >= 0" in capsys.readouterr().err

    def test_fuzz_rejects_bad_time_budget(self, capsys):
        assert main(["fuzz", "--count", "1", "--time-budget", "0"]) == 2
        assert "--time-budget must be positive" in capsys.readouterr().err

    def test_fuzz_rejects_unknown_machine(self, capsys):
        assert main(["fuzz", "--count", "1", "--machines", "nope"]) == 2
        assert "unknown machine 'nope'" in capsys.readouterr().err

    def test_fuzz_rejects_unknown_mode(self, capsys):
        assert main(["fuzz", "--count", "1", "--modes", "warp"]) == 2
        err = capsys.readouterr().err
        assert "unknown mode 'warp'" in err
        assert "checked, fast, turbo, native, batch" in err

    def test_fuzz_rejects_bad_jobs(self, capsys):
        for jobs in ("0", "-3"):
            assert main(["fuzz", "--count", "1", "--jobs", jobs]) == 2
            assert f"--jobs must be >= 1, got {jobs}" in capsys.readouterr().err

    def test_fuzz_rejects_empty_subsets(self, capsys):
        assert main(["fuzz", "--count", "1", "--machines", ""]) == 2
        assert "empty machine subset" in capsys.readouterr().err
        assert main(["fuzz", "--count", "1", "--modes", ""]) == 2
        assert "empty mode subset" in capsys.readouterr().err

    def test_fuzz_zero_count_is_a_no_op_campaign(self, tmp_path, capsys):
        assert self._fuzz(tmp_path, "--count", "0") == 0
        assert "fuzzed 0 kernels" in capsys.readouterr().err


class TestExploreCLI:
    def test_explore_tiny_campaign_with_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "frontier.json"
        assert main([
            "explore", "--seed", "0", "--generations", "1", "--population", "2",
            "--base", "m-tta-1", "--kernels", "mips", "--mode", "fast",
            "--no-cache", "-q", "--out", str(out_file),
        ]) == 0
        captured = capsys.readouterr()
        assert "Pareto frontier" in captured.out
        assert "explored" in captured.err
        import json as _json

        payload = _json.loads(out_file.read_text())
        assert payload["schema_version"] == 1
        assert payload["frontier"]
        assert payload["config"]["seed"] == 0

    def test_explore_json_mode(self, capsys):
        assert main([
            "explore", "--generations", "0", "--population", "1",
            "--base", "m-tta-1", "--kernels", "mips", "--mode", "fast",
            "--no-cache", "-q", "--json",
        ]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload["frontier"]] == ["m-tta-1"]

    def test_explore_rejects_bad_inputs(self, capsys):
        assert main(["explore", "--base", "mblaze-3", "--no-cache", "-q"]) == 2
        assert "TTA" in capsys.readouterr().err
        assert main(["explore", "--kernels", "nope", "--no-cache", "-q"]) == 2
        assert "unknown kernel" in capsys.readouterr().err
        assert main(["explore", "--jobs", "0", "--no-cache", "-q"]) == 2
        assert "--jobs" in capsys.readouterr().err
