"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture()
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("int main(void){ int i; int s=0; for(i=0;i<6;i++) s+=i; return s-15; }")
    return str(path)


class TestCLI:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "m-tta-2" in out and "MHz" in out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        assert "sha" in capsys.readouterr().out

    def test_run_success(self, minic_file, capsys):
        assert main(["run", minic_file, "-m", "m-tta-1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "exit code : 0" in out
        assert "cycles" in out

    def test_run_nonzero_exit(self, tmp_path, capsys):
        path = tmp_path / "fail.mc"
        path.write_text("int main(void){ return 7; }")
        assert main(["run", str(path), "-m", "mblaze-3"]) == 1

    def test_asm(self, minic_file, capsys):
        assert main(["asm", minic_file, "-m", "m-tta-2", "--count", "10"]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out and "->" in out

    def test_synth(self, capsys):
        assert main(["synth", "m-vliw-3"]) == 0
        out = capsys.readouterr().out
        assert "core LUTs" in out

    def test_report_rejects_unknown_kernel(self, capsys):
        assert main(["report", "--kernels", "nope"]) == 2
