"""Turbo (block-compiled) engine tests.

The turbo engine must be bit- and cycle-exact with the checked reference
engine — exit code, cycle count and **every** statistics counter — on
every CHStone-style workload, on both machine styles, including when
codegen bails out and the per-block fallback interprets through the fast
path.  Dynamic schedule violations (early FU reads, overlapping control
transfers, cycle-budget exhaustion) must raise the same errors at the
same cycle as the reference engines.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.mop import Imm, MOp, PhysReg
from repro.backend.program import Move, Program, TTAInstr, VLIWInstr
from repro.kernels import KERNELS, compile_kernel
from repro.sim import (
    SimError,
    TTASimulator,
    VLIWSimulator,
    collect_profile,
    format_profile,
    run_compiled,
    run_compiled_profiled,
)
from repro.sim import blockcompile
from repro.sim.blockcompile import tta_block_source, vliw_block_source

#: one TTA and one VLIW design point; turbo/checked agreement is
#: style-level, not design-point-level (same policy as test_predecode)
DIFF_MACHINES = ("m-tta-2", "m-vliw-2")

FIB_SRC = """
int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void){ return fib(12) - 144; }
"""


def _compile(src, machine_name):
    return compile_for_machine(compile_source(src), build_machine(machine_name))


# ---------------------------------------------------------------------------
# differential: every workload, turbo vs checked, every statistic
# ---------------------------------------------------------------------------


@pytest.mark.slow  # full kernel x machine differential matrix
@pytest.mark.parametrize("machine_name", DIFF_MACHINES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_identical_turbo_vs_checked(machine_name, kernel):
    compiled = compile_for_machine(compile_kernel(kernel), build_machine(machine_name))
    checked = run_compiled(compiled, mode="checked", check_connectivity=True)
    turbo = run_compiled(compiled, mode="turbo")
    assert asdict(turbo) == asdict(checked), f"{machine_name}/{kernel} diverged"
    assert turbo.exit_code == 0


def test_branchy_recursion_identical_turbo_vs_checked():
    """Calls, returns and conditional branches on design points the
    kernel sweep above does not cover."""
    for name in ("m-tta-1", "bm-tta-3", "p-vliw-3"):
        compiled = _compile(FIB_SRC, name)
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        turbo = run_compiled(compiled, mode="turbo")
        assert asdict(turbo) == asdict(checked), name
        assert turbo.exit_code == 0


class TestTurboDifferentialSmoke:
    """Small turbo-vs-checked matrix the CI workflow runs on every push
    (selected by class name; keep it fast: 2 machines x 2 kernels)."""

    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    @pytest.mark.parametrize("kernel", ("mips", "motion"))
    def test_smoke(self, machine_name, kernel):
        compiled = compile_for_machine(
            compile_kernel(kernel), build_machine(machine_name)
        )
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        turbo = run_compiled(compiled, mode="turbo")
        assert asdict(turbo) == asdict(checked), f"{machine_name}/{kernel} diverged"
        assert turbo.exit_code == 0


# ---------------------------------------------------------------------------
# turbo dynamic semantics: same errors, same values as the fast engine
# ---------------------------------------------------------------------------


def _tta_prog(moves_lists, machine_name="m-tta-2"):
    machine = build_machine(machine_name)
    return Program(machine, "tta", [TTAInstr(moves) for moves in moves_lists])


class TestTurboDynamics:
    def test_early_result_read_still_raises(self):
        prog = _tta_prog(
            [
                [
                    Move(("imm", 3), ("op", "ALU0", "o1", None), 0),
                    Move(("imm", 4), ("op", "ALU0", "t", "mul"), 1),
                ],
                [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
            ]
        )
        with pytest.raises(SimError, match="before the first result is due"):
            TTASimulator(prog, mode="turbo").run()

    def test_never_triggered_read_diagnosed(self):
        prog = _tta_prog([[Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)]])
        with pytest.raises(SimError, match="never triggered"):
            TTASimulator(prog, mode="turbo").run()

    def test_semi_virtual_latching_multiple_inflight(self):
        moves = [
            [
                Move(("imm", 6), ("op", "ALU0", "o1", None), 0),
                Move(("imm", 7), ("op", "ALU0", "t", "mul"), 1),
            ],
            [],
            [
                Move(("imm", 2), ("op", "ALU0", "o1", None), 0),
                Move(("imm", 1), ("op", "ALU0", "t", "shl"), 1),
            ],
            [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
            [Move(("fu", "ALU0"), ("rf", "RF0", 2), 0)],
            [Move(("imm", 0), ("op", "CU", "t", "halt"), 0)],
        ]
        sim = TTASimulator(_tta_prog(moves), mode="turbo")
        sim.run()
        assert sim.rfs["RF0"][1] == 42
        assert sim.rfs["RF0"][2] == 4

    def test_vliw_delayed_writeback_visible_late(self):
        machine = build_machine("m-vliw-2")
        r1 = PhysReg("RF0", 1)
        r2 = PhysReg("RF0", 2)
        instrs = [
            VLIWInstr([MOp("add", r1, [Imm(40), Imm(2)])]),
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # reads OLD r1 (0)
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # now reads 42
            VLIWInstr([MOp("halt", None, [Imm(0)])]),
        ]
        prog = Program(machine, "vliw", instrs)
        sim = VLIWSimulator(prog, mode="turbo")
        sim.run()
        assert sim.regs[r2] == 42

    def test_vliw_overlapping_control_rejected(self):
        machine = build_machine("m-vliw-2")
        instrs = [
            VLIWInstr([MOp("jump", None, [Imm(0)])]),
            VLIWInstr([MOp("jump", None, [Imm(0)])]),
            VLIWInstr([]),
            VLIWInstr([]),
        ]
        prog = Program(machine, "vliw", instrs)
        with pytest.raises(SimError, match="overlapping"):
            VLIWSimulator(prog, mode="turbo").run()

    def test_cycle_budget_exact_at_boundary(self):
        """A budget one cycle short fails; the exact cycle count passes —
        in lockstep with the fast engine."""
        compiled = _compile(FIB_SRC, "m-tta-2")
        cycles = run_compiled(compiled, mode="fast").cycles
        # result.cycles == halt_cycle + 1, and a run succeeds iff
        # halt_cycle <= max_cycles: the tightest passing budget is
        # cycles - 1 and one cycle less must raise in both engines.
        for mode in ("fast", "turbo"):
            ok = run_compiled(compiled, mode=mode, max_cycles=cycles - 1)
            assert ok.cycles == cycles
            with pytest.raises(SimError, match="cycle budget"):
                run_compiled(compiled, mode=mode, max_cycles=cycles - 2)


# ---------------------------------------------------------------------------
# block cache + codegen-fallback equivalence
# ---------------------------------------------------------------------------


class TestBlockCacheAndFallback:
    def test_block_code_cached_on_program(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        run_compiled(compiled, mode="turbo")
        cache = compiled.program.predecode_cache["tta-turbo"]
        assert cache, "no compiled blocks cached"
        snapshot = dict(cache)
        run_compiled(compiled, mode="turbo")
        after = compiled.program.predecode_cache["tta-turbo"]
        for start, entry in snapshot.items():
            assert after[start] is entry, f"block {start} recompiled"
        compiled.program.invalidate_predecode()
        assert "tta-turbo" not in compiled.program.predecode_cache

    def test_vliw_block_code_cached_on_program(self):
        compiled = _compile(FIB_SRC, "m-vliw-2")
        run_compiled(compiled, mode="turbo")
        assert compiled.program.predecode_cache["vliw-turbo"]

    def test_tta_fallback_path_is_equivalent(self, monkeypatch):
        """With codegen disabled entirely, the turbo driver's per-block
        fallback must still be bit- and cycle-exact with checked."""
        monkeypatch.setattr(
            blockcompile, "_compile_tta_block", lambda *a, **k: None
        )
        compiled = _compile(FIB_SRC, "m-tta-2")
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        turbo = run_compiled(compiled, mode="turbo")
        assert asdict(turbo) == asdict(checked)
        assert turbo.exit_code == 0
        # nothing compiled: every cache entry is a None (fallback) marker
        assert all(
            entry is None
            for entry in compiled.program.predecode_cache["tta-turbo"].values()
        )

    def test_vliw_fallback_path_is_equivalent(self, monkeypatch):
        monkeypatch.setattr(
            blockcompile, "_compile_vliw_block", lambda *a, **k: None
        )
        compiled = _compile(FIB_SRC, "m-vliw-2")
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        turbo = run_compiled(compiled, mode="turbo")
        assert asdict(turbo) == asdict(checked)
        assert turbo.exit_code == 0

    def test_block_source_helpers(self):
        tta = _compile(FIB_SRC, "m-tta-2")
        src = tta_block_source(tta.program, 0)
        assert src is not None and "def _b(" in src
        vliw = _compile(FIB_SRC, "m-vliw-2")
        src = vliw_block_source(vliw.program, 0)
        assert src is not None and "def _b(" in src


# ---------------------------------------------------------------------------
# profiling: zero-overhead hit vectors -> hot blocks + opcode histograms
# ---------------------------------------------------------------------------


class TestProfiling:
    def test_turbo_profile_accounts_every_instruction(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        result, profile = run_compiled_profiled(compiled, mode="turbo")
        assert result.exit_code == 0
        assert profile.engine == "turbo"
        assert profile.cycles == result.cycles
        assert profile.instructions == sum(profile.pc_hits) > 0
        # blocks partition the executed pcs: instruction totals must match
        assert sum(b.instructions for b in profile.blocks) == profile.instructions
        # hottest-first ordering
        instrs = [b.instructions for b in profile.blocks]
        assert instrs == sorted(instrs, reverse=True)
        assert profile.opcode_counts  # fib triggers plenty of ops

    def test_fast_and_turbo_profiles_agree(self):
        compiled = _compile(FIB_SRC, "m-vliw-2")
        _, fast = run_compiled_profiled(compiled, mode="fast")
        _, turbo = run_compiled_profiled(compiled, mode="turbo")
        assert fast.engine == "fast" and turbo.engine == "turbo"
        assert fast.pc_hits == turbo.pc_hits
        assert fast.opcode_counts == turbo.opcode_counts
        assert fast.cycles == turbo.cycles
        # fast has no block grouping: every region is a single pc
        assert all(b.length == 1 for b in fast.blocks)

    def test_checked_engine_has_no_profile(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        sim = TTASimulator(compiled.program, mode="checked")
        sim.preload(compiled.data_init)
        result = sim.run()
        with pytest.raises(ValueError, match="no profile data"):
            collect_profile(sim, result)

    def test_missing_engine_label_raises_not_mislabels(self):
        """A hit vector without an engine label is a half-populated
        simulator: refuse to profile rather than guess 'fast'."""
        compiled = _compile(FIB_SRC, "m-tta-2")
        sim = TTASimulator(compiled.program, mode="fast")
        sim.preload(compiled.data_init)
        result = sim.run()
        del sim._last_engine
        with pytest.raises(ValueError, match="no profile data"):
            collect_profile(sim, result)

    def test_profiled_run_rejects_scalar_and_checked(self):
        compiled = _compile(FIB_SRC, "mblaze-3")
        with pytest.raises(ValueError, match="TTA and VLIW cores only"):
            run_compiled_profiled(compiled)
        tta = _compile(FIB_SRC, "m-tta-2")
        with pytest.raises(ValueError, match="mode='fast' or mode='turbo'"):
            run_compiled_profiled(tta, mode="checked")

    def test_format_profile_renders(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        _, profile = run_compiled_profiled(compiled, mode="turbo")
        text = format_profile(profile)
        assert "hot blocks" in text
        assert "trigger histogram" in text
        assert "engine         : turbo" in text
