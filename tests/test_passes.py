"""Optimizer pass tests: behaviour and semantics preservation."""

from __future__ import annotations

from repro.frontend import compile_source
from repro.ir import Const, Function, IRBuilder, Interpreter, Module
from repro.ir.instructions import BinOp, Copy, Jump
from repro.ir.passes import (
    const_fold,
    copy_prop,
    dead_code_elim,
    local_cse,
    optimize_function,
    prune_unreachable_functions,
    simplify_cfg,
    strength_reduce,
)


def fn_with(build):
    fn = Function("f", 0)
    b = IRBuilder(fn)
    b.set_block(fn.new_block("entry"))
    build(fn, b)
    return fn


def count_instrs(fn):
    return sum(len(block.instrs) for block in fn.ordered_blocks())


class TestConstFold:
    def test_folds_constant_binop(self):
        def build(fn, b):
            x = b.binop("add", Const(2), Const(3))
            y = b.binop("mul", x, Const(4))
            b.ret(y)

        fn = fn_with(build)
        const_fold(fn)
        # both ops became constant copies
        assert all(isinstance(i, Copy) for i in fn.entry.instrs)

    def test_folds_cjump_on_constant(self):
        def build(fn, b):
            t = fn.new_block("t")
            f = fn.new_block("f")
            b.cjump(Const(1), t, f)
            b.set_block(t)
            b.ret(Const(1))
            b.set_block(f)
            b.ret(Const(0))

        fn = fn_with(build)
        assert const_fold(fn)
        assert isinstance(fn.entry.terminator, Jump)

    def test_kills_on_unknown_redefinition(self):
        def build(fn, b):
            v = b.const(1)
            # redefine v with a value the pass cannot know (a call result)
            b.call("external", [], want_result=True)
            result = fn.entry.instrs[-1].dest
            b.binop("add", result, Const(1), dest=v)
            w = b.binop("mul", v, Const(3))
            b.ret(w)

        fn = fn_with(build)
        const_fold(fn)
        # neither the add nor the mul may fold: v's value is unknown
        binops = [i for i in fn.entry.instrs if isinstance(i, BinOp)]
        assert len(binops) == 2, "ops on unknown values must survive"


class TestStrengthAndCSE:
    def test_mul_pow2_to_shift(self):
        def build(fn, b):
            p = fn.new_vreg()
            fn.params.append(p)
            y = b.binop("mul", p, Const(8))
            b.ret(y)

        fn = fn_with(build)
        strength_reduce(fn)
        ops = [i.op for i in fn.entry.instrs if isinstance(i, BinOp)]
        assert ops == ["shl"]

    def test_identities(self):
        def build(fn, b):
            p = fn.new_vreg()
            fn.params.append(p)
            a = b.binop("add", p, Const(0))
            c = b.binop("mul", a, Const(1))
            d = b.binop("xor", c, Const(0))
            b.ret(d)

        fn = fn_with(build)
        strength_reduce(fn)
        assert not [i for i in fn.entry.instrs if isinstance(i, BinOp)]

    def test_cse_shares_subexpression(self):
        def build(fn, b):
            p = fn.new_vreg()
            fn.params.append(p)
            a = b.binop("add", p, Const(3))
            c = b.binop("add", p, Const(3))
            d = b.binop("xor", a, c)
            b.ret(d)

        fn = fn_with(build)
        local_cse(fn)
        binops = [i for i in fn.entry.instrs if isinstance(i, BinOp)]
        assert len(binops) == 2  # one add + the xor

    def test_cse_respects_redefinition(self):
        def build(fn, b):
            p = fn.new_vreg()
            fn.params.append(p)
            a = b.binop("add", p, Const(3))
            b.binop("add", p, Const(1), dest=p)
            c = b.binop("add", p, Const(3))  # different p!
            d = b.binop("xor", a, c)
            b.ret(d)

        fn = fn_with(build)
        changed = local_cse(fn)
        binops = [i for i in fn.entry.instrs if isinstance(i, BinOp)]
        assert len(binops) == 4 and not changed


class TestDCEAndCFG:
    def test_dce_removes_dead_chain(self):
        def build(fn, b):
            dead1 = b.const(1)
            dead2 = b.binop("add", dead1, Const(2))
            b.ret(Const(0))

        fn = fn_with(build)
        assert dead_code_elim(fn)
        assert count_instrs(fn) == 0

    def test_dce_keeps_stores_and_calls(self):
        def build(fn, b):
            b.store("stw", Const(0x200), Const(1))
            b.call("g", [], want_result=True)
            b.ret(Const(0))

        fn = fn_with(build)
        dead_code_elim(fn)
        assert count_instrs(fn) == 2

    def test_simplify_merges_chain(self):
        def build(fn, b):
            nxt = fn.new_block("next")
            b.jump(nxt)
            b.set_block(nxt)
            b.ret(Const(7))

        fn = fn_with(build)
        assert simplify_cfg(fn)
        assert len(fn.block_order) == 1

    def test_simplify_removes_unreachable(self):
        def build(fn, b):
            b.ret(Const(0))
            orphan = fn.new_block("orphan")
            orphan.terminator = Jump(orphan.name)

        fn = fn_with(build)
        assert simplify_cfg(fn)
        assert len(fn.block_order) == 1


class TestWholeProgram:
    def test_prune_unreachable_functions(self):
        src = """
        int unused(int x) { return x * 3; }
        int used(int x) { return x + 1; }
        int main(void) { return used(4); }
        """
        module = compile_source(src, optimize=False)
        prune_unreachable_functions(module)
        assert "unused" not in module.functions
        assert "used" in module.functions
        # the division runtime is unreferenced here and also pruned
        assert "__divu" not in module.functions

    def test_recursion_not_pruned(self):
        src = "int main(void) { return main(); }"
        module = compile_source(src, optimize=False)
        prune_unreachable_functions(module)
        assert "main" in module.functions


class TestSemanticPreservation:
    SNIPPETS = [
        ("int main(void){ int a=3; int b=a*4+2; return b - (a << 1); }", None),
        ("int main(void){ int i; int s=0; for(i=0;i<17;i++) s+= i^3; return s; }", None),
        (
            "int main(void){ unsigned x=0xdead; if (x > 100) x /= 7; else x *= 2;"
            " return (int)(x & 0xffff); }",
            None,
        ),
        ("int sq(int v){return v*v;} int main(void){ return sq(9) % 13; }", None),
    ]

    def test_optimized_equals_unoptimized(self):
        for src, _ in self.SNIPPETS:
            plain = Interpreter(compile_source(src, optimize=False)).run()
            optimized = Interpreter(compile_source(src, optimize=True)).run()
            assert plain == optimized, src

    def test_optimize_function_is_idempotent_on_result(self):
        src = self.SNIPPETS[1][0]
        module = compile_source(src, optimize=True)
        before = Interpreter(module).run()
        for function in module.functions.values():
            optimize_function(function)
        after = Interpreter(module).run()
        assert before == after
