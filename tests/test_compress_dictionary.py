"""Dictionary-compression tests: losslessness (round-trip through the
dictionary), size accounting, and degenerate programs.

``test_compress_asm.py`` covers the ratio-level claims; this file pins
the *mechanics*: the dictionary + index stream must reconstruct the
exact canonical instruction sequence, and the reported bit totals must
equal what that dictionary and stream actually cost.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.compress import compress_program, per_slot_compression
from repro.compress.dictionary import _bits_for, _instruction_key, _slot_keys
from repro.machine.encoding import encode_machine

SRC = """
int mix(int a, int b){ return (a ^ (b << 3)) + (a & b); }
int main(void){
    int i; int acc = 1;
    for (i = 0; i < 9; i++) acc = mix(acc, i) & 0x7FFF;
    return acc & 0xFF;
}
"""


@pytest.fixture(scope="module", params=["mblaze-3", "m-vliw-2", "m-tta-2", "m-tta-3"])
def program(request):
    compiled = compile_for_machine(compile_source(SRC), build_machine(request.param))
    return compiled.program


def _single_instruction(program):
    """A one-instruction copy of *program* (same machine/style)."""
    return dataclasses.replace(
        program,
        instrs=program.instrs[:1],
        labels={},
        extra_imm_words=0,
        predecode_cache={},
    )


class TestFullDictionaryRoundTrip:
    def test_dictionary_and_indices_reconstruct_program(self, program):
        """Lossless: indexing the dictionary reproduces every instruction's
        canonical form, in program order (the decompressor's job)."""
        keys = [_instruction_key(instr) for instr in program.instrs]
        dictionary = sorted(set(keys), key=repr)
        index_of = {key: i for i, key in enumerate(dictionary)}
        stream = [index_of[key] for key in keys]
        assert [dictionary[i] for i in stream] == keys

    def test_accounting_matches_dictionary_and_stream(self, program):
        report = compress_program(program)
        keys = [_instruction_key(instr) for instr in program.instrs]
        distinct = len(set(keys))
        width = encode_machine(program.machine).instruction_width
        assert report.entries == distinct
        assert report.dictionary_bits == distinct * width
        assert report.index_bits == _bits_for(distinct) * len(keys)
        assert report.original_bits == program.instruction_count * width
        assert report.total_bits == report.index_bits + report.dictionary_bits

    def test_entries_bounded_by_program_length(self, program):
        report = compress_program(program)
        assert 1 <= report.entries <= len(program.instrs)


class TestPerSlotRoundTrip:
    def test_each_slot_reconstructs_its_column(self, program):
        """Per-slot losslessness: every slot's index stream reproduces the
        slot's canonical content column, including explicit nops."""
        table = _slot_keys(program)
        assert all(len(column) == len(program.instrs) for column in table)
        for column in table:
            dictionary = sorted(set(column), key=repr)
            index_of = {key: i for i, key in enumerate(dictionary)}
            assert [dictionary[index_of[key]] for key in column] == column

    def test_accounting_sums_over_slots(self, program):
        report = per_slot_compression(program)
        table = _slot_keys(program)
        slot_widths = encode_machine(program.machine).slot_widths
        entries = 0
        index_bits = 0
        dictionary_bits = 0
        for slot, column in enumerate(table):
            distinct = len(set(column))
            entries += distinct
            index_bits += _bits_for(distinct) * len(column)
            width = slot_widths[slot] if slot < len(slot_widths) else slot_widths[-1]
            dictionary_bits += distinct * width
        assert report.entries == entries
        assert report.index_bits == index_bits
        assert report.dictionary_bits == dictionary_bits

    def test_per_slot_indices_never_wider_than_full(self, program):
        """A slot dictionary can never have more entries than the full
        dictionary has instructions (the regularity the scheme exploits)."""
        full = compress_program(program)
        for column in _slot_keys(program):
            assert len(set(column)) <= max(full.entries, 1) + 1  # +1 for nop


class TestDegenerateprograms:
    def test_single_instruction_full(self, program):
        tiny = _single_instruction(program)
        report = compress_program(tiny)
        width = encode_machine(tiny.machine).instruction_width
        assert report.entries == 1
        # a one-entry dictionary still needs a 1-bit index per instruction
        assert report.index_bits == 1
        assert report.dictionary_bits == width
        assert report.original_bits == width
        # storing the word once + one index can never beat storing it once:
        assert report.ratio > 1.0

    def test_single_instruction_per_slot(self, program):
        tiny = _single_instruction(program)
        report = per_slot_compression(tiny)
        assert report.entries >= 1
        assert report.index_bits >= 1
        assert report.total_bits == report.index_bits + report.dictionary_bits

    def test_bits_for_degenerate_counts(self):
        # 0 and 1 entries still cost one index bit; powers of two are exact
        assert _bits_for(0) == 1
        assert _bits_for(1) == 1
        assert _bits_for(2) == 1
        assert _bits_for(3) == 2
        assert _bits_for(256) == 8
        assert _bits_for(257) == 9
