"""Batched lockstep engine tests.

``mode="batch"`` must be bit- and cycle-exact with the checked reference
engine on every lane -- exit code, cycle count and **every** statistics
counter -- whether the lanes dedup onto one fast run (identical inputs),
execute vectorized in lockstep (distinct inputs), or fall back per lane
on control-flow divergence and dynamic errors, mirroring turbo's
per-block fallback contract.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

np = pytest.importorskip("numpy")

from repro import build_machine, compile_for_machine, compile_source, obs
from repro.kernels import KERNELS, compile_kernel
from repro.sim import SimError, run_batch, run_compiled
from repro.sim import batch as batch_mod

DIFF_MACHINES = ("m-tta-2", "m-vliw-2")

LANE_COUNTS = (1, 2, 32)

FIB_SRC = """
int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void){ return fib(12) - 144; }
"""

#: loop trip count, multiplier and branch threshold all come from
#: memory, so per-lane preloads drive genuinely divergent control flow
BRANCH_SRC = """
int g[4] = {3, 10, 7, 2};
int main() {
  int acc = 0;
  int n = g[0];
  for (int i = 0; i < n; i = i + 1) { acc = acc + g[1] * i + i; }
  if (acc > g[2]) { return acc - g[3]; }
  return acc + g[3];
}
"""

#: the index loaded from g[0] can point far outside the 1 MiB data
#: memory, producing a per-lane out-of-range SimError
OOB_SRC = """
int g[2] = {1, 0};
int main() {
  int a[4];
  a[0] = 11; a[1] = 22; a[2] = 33; a[3] = 44;
  return a[g[0]] + g[1];
}
"""


def _compile(src, machine_name):
    return compile_for_machine(compile_source(src), build_machine(machine_name))


def _word(value: int) -> bytes:
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


# ---------------------------------------------------------------------------
# differential: every lane byte-identical to the checked oracle
# ---------------------------------------------------------------------------


class TestBatchDifferentialSmoke:
    """Small batch-vs-checked matrix the CI workflow runs on every push
    (selected by class name; keep it fast: 2 machines x 2 kernels)."""

    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    @pytest.mark.parametrize("kernel", ("mips", "motion"))
    def test_smoke(self, machine_name, kernel):
        compiled = compile_for_machine(
            compile_kernel(kernel), build_machine(machine_name)
        )
        reference = asdict(run_compiled(compiled, mode="checked"))
        for lanes in LANE_COUNTS:
            results = run_batch(compiled, lanes=lanes)
            assert len(results) == lanes
            for lane, result in enumerate(results):
                assert asdict(result) == reference, (
                    f"{machine_name}/{kernel} lane {lane}/{lanes} diverged"
                )


@pytest.mark.slow  # full kernel x machine x lane-count differential matrix
@pytest.mark.parametrize("machine_name", DIFF_MACHINES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_identical_batch_vs_checked(machine_name, kernel):
    compiled = compile_for_machine(compile_kernel(kernel), build_machine(machine_name))
    reference = asdict(run_compiled(compiled, mode="checked"))
    assert reference["exit_code"] == 0
    for lanes in LANE_COUNTS:
        for lane, result in enumerate(run_batch(compiled, lanes=lanes)):
            assert asdict(result) == reference, (
                f"{machine_name}/{kernel} lane {lane}/{lanes} diverged"
            )


# ---------------------------------------------------------------------------
# genuinely distinct lanes: vectorized lockstep + divergence fallback
# ---------------------------------------------------------------------------


class TestVectorLanes:
    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    def test_divergent_control_flow_matches_checked(self, machine_name):
        compiled = _compile(BRANCH_SRC, machine_name)
        g = compiled.symbols["g"]
        inputs = [
            (),
            ((g, _word(1)),),        # one-trip loop, opposite branch
            ((g + 4, _word(100)),),  # large multiplier, same control flow
            ((g, _word(0)),),        # zero-trip loop
            (),                      # dedups onto lane 0
        ]
        results = run_batch(compiled, inputs=inputs)
        for lane, lane_input in enumerate(inputs):
            want = run_batch(compiled, inputs=[lane_input], mode="checked")[0]
            assert asdict(results[lane]) == asdict(want), f"lane {lane}"
        # the lanes really did take different paths
        assert len({r.exit_code for r in results}) >= 3
        assert len({r.cycles for r in results}) >= 2

    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    def test_dynamic_error_lane_falls_back(self, machine_name):
        compiled = _compile(OOB_SRC, machine_name)
        g = compiled.symbols["g"]
        inputs = [
            ((g, _word(2)),),
            ((g, _word(300_000)),),  # 4 * 300000 is past the 1 MiB memory
            ((g, _word(3)),),
        ]
        got = run_batch(compiled, inputs=inputs, on_error="return")
        want = run_batch(compiled, inputs=inputs, mode="fast", on_error="return")
        for lane, (b, f) in enumerate(zip(got, want)):
            if isinstance(f, SimError):
                assert isinstance(b, SimError), f"lane {lane}"
                assert str(b) == str(f), f"lane {lane}"
            else:
                assert asdict(b) == asdict(f), f"lane {lane}"
        assert isinstance(got[1], SimError)
        assert "out of range" in str(got[1])
        assert got[0].exit_code == 33 and got[2].exit_code == 44

    def test_on_error_raise_reraises_lowest_lane(self):
        compiled = _compile(OOB_SRC, "m-tta-2")
        g = compiled.symbols["g"]
        inputs = [((g, _word(0)),), ((g, _word(400_000)),), ((g, _word(500_000)),)]
        with pytest.raises(SimError, match="out of range") as exc_info:
            run_batch(compiled, inputs=inputs)
        # lowest failing lane's error, not a later lane's
        want = run_batch(compiled, inputs=[inputs[1]], mode="fast", on_error="return")
        assert str(exc_info.value) == str(want[0])

    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    def test_cycle_budget_boundary_per_lane(self, machine_name):
        """Per-lane cycle budgets stay exact through the vector engine:
        the tightest passing budget is ``cycles - 1`` for every lane and
        one less raises the same error the fast engine raises."""
        compiled = _compile(BRANCH_SRC, machine_name)
        g = compiled.symbols["g"]
        inputs = [((g, _word(1)),), ((g, _word(8)),)]  # short and long lanes
        refs = run_batch(compiled, inputs=inputs, mode="fast")
        short, long_ = sorted(r.cycles for r in refs)
        assert short < long_
        for budget in (short - 2, short - 1, long_ - 2, long_ - 1):
            got = run_batch(
                compiled, inputs=inputs, max_cycles=budget, on_error="return"
            )
            want = run_batch(
                compiled, inputs=inputs, mode="fast", max_cycles=budget,
                on_error="return",
            )
            for lane, (b, f) in enumerate(zip(got, want)):
                if isinstance(f, SimError):
                    assert isinstance(b, SimError), (budget, lane)
                    assert str(b) == str(f), (budget, lane)
                else:
                    assert asdict(b) == asdict(f), (budget, lane)
        # sanity: the tight budgets really did split pass/fail per lane
        mixed = run_batch(
            compiled, inputs=inputs, max_cycles=long_ - 1, on_error="return"
        )
        assert not any(isinstance(r, SimError) for r in mixed)
        mixed = run_batch(
            compiled, inputs=inputs, max_cycles=short - 2, on_error="return"
        )
        assert all(isinstance(r, SimError) for r in mixed)

    def test_obs_counters_track_fallback_and_dedup(self):
        compiled = _compile(BRANCH_SRC, "m-tta-2")
        g = compiled.symbols["g"]
        inputs = [(), ((g, _word(1)),), ()]
        with obs.tracing() as tracer:
            run_batch(compiled, inputs=inputs)
        counters = tracer.to_payload()["counters"]
        assert counters["sim.batch.lanes"] == 3
        assert counters["sim.batch.dedup_lanes"] == 1  # the repeated ()
        assert counters["sim.batch.memory_promotions"] >= 1
        # the two distinct keys take different branch directions, so the
        # vector run must have split at least once
        assert counters["sim.batch.restarts"] >= 1
        assert counters["sim.batch.fallback_lanes"] >= 1


# ---------------------------------------------------------------------------
# the shared entry point: serial modes, scalar cores, run_compiled
# ---------------------------------------------------------------------------


class TestSharedEntryPoint:
    @pytest.mark.parametrize("mode", ("checked", "fast", "turbo"))
    def test_serial_modes_run_per_lane(self, mode):
        compiled = _compile(FIB_SRC, "m-tta-2")
        reference = asdict(run_compiled(compiled, mode=mode))
        results = run_batch(compiled, lanes=2, mode=mode)
        assert [asdict(r) for r in results] == [reference, reference]

    def test_scalar_core_always_uses_its_single_engine(self):
        compiled = _compile(FIB_SRC, "mblaze-3")
        reference = asdict(run_compiled(compiled))
        for mode in ("batch", "checked", "turbo"):
            results = run_batch(compiled, lanes=2, mode=mode)
            assert [asdict(r) for r in results] == [reference, reference]

    def test_run_compiled_mode_batch(self):
        compiled = _compile(FIB_SRC, "m-vliw-2")
        reference = asdict(run_compiled(compiled, mode="checked"))
        assert asdict(run_compiled(compiled, mode="batch")) == reference

    def test_lane_count_edge_cases(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        assert run_batch(compiled, lanes=0) == []
        assert len(run_batch(compiled)) == 1  # default: one lane
        with pytest.raises(ValueError, match="lane count"):
            run_batch(compiled, lanes=-1)
        with pytest.raises(ValueError, match="disagrees"):
            run_batch(compiled, inputs=[(), ()], lanes=3)

    def test_rejects_unknown_mode_and_policy(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        with pytest.raises(ValueError, match="unknown simulation mode"):
            run_batch(compiled, lanes=1, mode="warp")
        with pytest.raises(ValueError, match="on_error"):
            run_batch(compiled, lanes=1, on_error="ignore")

    def test_numpy_is_gated_not_required_for_serial_modes(self, monkeypatch):
        compiled = _compile(FIB_SRC, "m-tta-2")
        monkeypatch.setattr(batch_mod, "np", None)
        with pytest.raises(RuntimeError, match="numpy"):
            batch_mod.run_batch(compiled, lanes=2)
        results = batch_mod.run_batch(compiled, lanes=2, mode="fast")
        assert len(results) == 2 and results[0].exit_code == 0
