"""Pre-decoded fast-engine tests.

The fast engine must be bit- and cycle-exact with the checked reference
path on every CHStone-style workload, and its load-time verifier must
catch every structural violation the per-cycle checker catches (plus the
ones the per-cycle checker historically missed, like long-immediate
``extra_slots`` double-booking).
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.mop import Imm, LabelRef, MOp, PhysReg
from repro.backend.program import Move, Program, TTAInstr, VLIWInstr
from repro.isa.operations import OPS
from repro.isa.semantics import MASK32, evaluate
from repro.kernels import KERNELS, compile_kernel
from repro.sim import (
    SimError,
    TTASimulator,
    VLIWSimulator,
    run_compiled,
    verify_tta_program,
    verify_vliw_program,
)
from repro.sim.predecode import ALU_FUNCS, static_decode_tta, static_decode_vliw

#: one TTA and one VLIW design point; the checked/fast agreement is
#: style-level, not design-point-level, and this keeps runtime sane
DIFF_MACHINES = ("m-tta-2", "m-vliw-2")


# ---------------------------------------------------------------------------
# differential: every workload, both modes, every statistic
# ---------------------------------------------------------------------------


@pytest.mark.slow  # full kernel x machine differential matrix
@pytest.mark.parametrize("machine_name", DIFF_MACHINES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_identical_across_modes(machine_name, kernel):
    compiled = compile_for_machine(compile_kernel(kernel), build_machine(machine_name))
    checked = run_compiled(compiled, mode="checked", check_connectivity=True)
    fast = run_compiled(compiled, mode="fast")
    assert asdict(fast) == asdict(checked), f"{machine_name}/{kernel} diverged"
    assert fast.exit_code == 0


def test_branchy_recursion_identical_across_modes():
    """Calls, returns and conditional branches in both modes on the design
    points the kernel sweep does not cover."""
    src = """
    int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main(void){ return fib(12) - 144; }
    """
    for name in ("m-tta-1", "bm-tta-3", "p-vliw-3"):
        compiled = compile_for_machine(compile_source(src), build_machine(name))
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        fast = run_compiled(compiled, mode="fast")
        assert asdict(fast) == asdict(checked), name
        assert fast.exit_code == 0


def test_alu_funcs_agree_with_evaluate():
    """The pre-bound ALU table must be bit-exact with isa.semantics."""
    rng = random.Random(1234)
    interesting = [0, 1, 2, 31, 32, 0x7FFFFFFF, 0x80000000, MASK32]
    samples = interesting + [rng.getrandbits(32) for _ in range(200)]
    for op, fn in ALU_FUNCS.items():
        operands = OPS[op].operands
        for a in samples:
            b = rng.getrandbits(32)
            if operands == 2:
                assert fn(a, b) == evaluate(op, (a, b)), (op, a, b)
            else:
                assert fn(a) == evaluate(op, (a,)), (op, a)


# ---------------------------------------------------------------------------
# load-time verifier: structural violations caught before cycle 0
# ---------------------------------------------------------------------------


def _tta_prog(moves_lists, machine_name="m-tta-2"):
    machine = build_machine(machine_name)
    return Program(machine, "tta", [TTAInstr(moves) for moves in moves_lists])


class TestTTALoadTimeVerifier:
    def test_double_bus_use(self):
        prog = _tta_prog(
            [[Move(("imm", 0), ("rf", "RF0", 1), 0), Move(("imm", 1), ("rf", "RF0", 2), 0)]]
        )
        with pytest.raises(SimError, match="bus 0 used twice"):
            verify_tta_program(prog)
        with pytest.raises(SimError, match="bus 0 used twice"):
            TTASimulator(prog, mode="fast").run()

    def test_extra_slots_counted(self):
        # m-tta-1 has 3 buses: two moves plus two long-immediate slots
        # need four -- the seed verifier silently accepted this.
        prog = _tta_prog(
            [
                [
                    Move(("imm", 0x12345678), ("rf", "RF0", 1), 0, extra_slots=2),
                    Move(("imm", 1), ("op", "ALU0", "o1", None), 1),
                ]
            ],
            "m-tta-1",
        )
        with pytest.raises(SimError, match="bus oversubscription"):
            verify_tta_program(prog)
        with pytest.raises(SimError, match="bus oversubscription"):
            TTASimulator(prog, mode="checked").run()

    def test_extra_slots_fitting_accepted(self):
        prog = _tta_prog(
            [
                [Move(("imm", 0x12345678), ("rf", "RF0", 1), 0, extra_slots=2)],
                [Move(("imm", 0), ("op", "CU", "t", "halt"), 0)],
            ],
            "m-tta-1",
        )
        verify_tta_program(prog)

    def test_write_ports(self):
        prog = _tta_prog(
            [[Move(("imm", 0), ("rf", "RF0", 1), 0), Move(("imm", 1), ("rf", "RF0", 2), 1)]]
        )
        with pytest.raises(SimError, match="write ports"):
            verify_tta_program(prog)

    def test_connectivity_always_checked_in_fast_mode(self):
        # bm-tta-2 bus 3 cannot read from the register files; fast mode
        # needs no check_connectivity opt-in.
        machine = build_machine("bm-tta-2")
        prog = Program(
            machine, "tta", [TTAInstr([Move(("rf", "RF0", 1), ("rf", "RF1", 1), 3)])]
        )
        with pytest.raises(SimError, match="not routable"):
            TTASimulator(prog, mode="fast").run()

    def test_unlinked_immediate_rejected_at_load(self):
        prog = _tta_prog([[Move(("imm", LabelRef("nowhere")), ("rf", "RF0", 1), 0)]])
        with pytest.raises(SimError, match="unlinked immediate"):
            verify_tta_program(prog)

    def test_trigger_without_opcode_rejected_at_load(self):
        prog = _tta_prog([[Move(("imm", 0), ("op", "ALU0", "t", None), 0)]])
        with pytest.raises(SimError, match="without opcode"):
            verify_tta_program(prog)

    def test_register_index_range_checked(self):
        prog = _tta_prog([[Move(("imm", 0), ("rf", "RF0", 9999), 0)]])
        with pytest.raises(SimError, match="out of range"):
            verify_tta_program(prog)

    def test_decode_is_cached_on_program(self):
        prog = _tta_prog([[Move(("imm", 0), ("op", "CU", "t", "halt"), 0)]])
        first = static_decode_tta(prog)
        assert static_decode_tta(prog) is first
        prog.invalidate_predecode()
        assert static_decode_tta(prog) is not first


class TestVLIWLoadTimeVerifier:
    def _prog(self, instrs, machine_name="m-vliw-2"):
        return Program(build_machine(machine_name), "vliw", instrs)

    def test_issue_width_enforced(self):
        machine = build_machine("m-vliw-2")
        regs = [PhysReg("RF0", i) for i in range(1, 6)]
        ops = [MOp("add", r, [Imm(1), Imm(2)]) for r in regs]
        prog = self._prog([VLIWInstr(ops)])
        assert len(ops) > machine.issue_width
        with pytest.raises(SimError, match="issue width"):
            verify_vliw_program(prog)

    def test_unresolved_operand_rejected_at_load(self):
        prog = self._prog(
            [VLIWInstr([MOp("add", PhysReg("RF0", 1), [LabelRef("x"), Imm(0)])])]
        )
        with pytest.raises(SimError, match="unresolved operand"):
            verify_vliw_program(prog)

    def test_missing_destination_rejected_at_load(self):
        prog = self._prog([VLIWInstr([MOp("add", None, [Imm(1), Imm(2)])])])
        with pytest.raises(SimError, match="lacks a destination"):
            verify_vliw_program(prog)

    def test_decode_is_cached_on_program(self):
        prog = self._prog([VLIWInstr([MOp("halt", None, [Imm(0)])])])
        first = static_decode_vliw(prog)
        assert static_decode_vliw(prog) is first


# ---------------------------------------------------------------------------
# fast-engine dynamic semantics
# ---------------------------------------------------------------------------


class TestFastEngineDynamics:
    def test_early_result_read_still_raises(self):
        prog = _tta_prog(
            [
                [
                    Move(("imm", 3), ("op", "ALU0", "o1", None), 0),
                    Move(("imm", 4), ("op", "ALU0", "t", "mul"), 1),
                ],
                [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
            ]
        )
        with pytest.raises(SimError, match="before the first result is due"):
            TTASimulator(prog, mode="fast").run()

    def test_never_triggered_read_diagnosed(self):
        prog = _tta_prog([[Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)]])
        with pytest.raises(SimError, match="never triggered"):
            TTASimulator(prog, mode="fast").run()

    def test_semi_virtual_latching_multiple_inflight(self):
        moves = [
            [
                Move(("imm", 6), ("op", "ALU0", "o1", None), 0),
                Move(("imm", 7), ("op", "ALU0", "t", "mul"), 1),
            ],
            [],
            [
                Move(("imm", 2), ("op", "ALU0", "o1", None), 0),
                Move(("imm", 1), ("op", "ALU0", "t", "shl"), 1),
            ],
            [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
            [Move(("fu", "ALU0"), ("rf", "RF0", 2), 0)],
            [Move(("imm", 0), ("op", "CU", "t", "halt"), 0)],
        ]
        sim = TTASimulator(_tta_prog(moves), mode="fast")
        sim.run()
        assert sim.rfs["RF0"][1] == 42
        assert sim.rfs["RF0"][2] == 4

    def test_vliw_delayed_writeback_visible_late(self):
        machine = build_machine("m-vliw-2")
        r1 = PhysReg("RF0", 1)
        r2 = PhysReg("RF0", 2)
        instrs = [
            VLIWInstr([MOp("add", r1, [Imm(40), Imm(2)])]),
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # reads OLD r1 (0)
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # now reads 42
            VLIWInstr([MOp("halt", None, [Imm(0)])]),
        ]
        prog = Program(machine, "vliw", instrs)
        sim = VLIWSimulator(prog, mode="fast")
        sim.run()
        assert sim.regs[r2] == 42

    def test_vliw_overlapping_control_rejected(self):
        machine = build_machine("m-vliw-2")
        instrs = [
            VLIWInstr([MOp("jump", None, [Imm(0)])]),
            VLIWInstr([MOp("jump", None, [Imm(0)])]),
            VLIWInstr([]),
            VLIWInstr([]),
        ]
        prog = Program(machine, "vliw", instrs)
        with pytest.raises(SimError, match="overlapping"):
            VLIWSimulator(prog, mode="fast").run()

    def test_unknown_mode_rejected(self):
        prog = _tta_prog([[Move(("imm", 0), ("op", "CU", "t", "halt"), 0)]])
        with pytest.raises(ValueError, match="unknown simulation mode"):
            TTASimulator(prog, mode="blazing")
        with pytest.raises(ValueError, match="unknown simulation mode"):
            VLIWSimulator(Program(build_machine("m-vliw-2"), "vliw", []), mode="blazing")


# ---------------------------------------------------------------------------
# regression: simulator state must not leak across instances
# ---------------------------------------------------------------------------


class TestSimulatorStateIsolation:
    def test_pending_redirect_is_instance_state(self):
        """``_pending_redirect`` used to be a class attribute; a pending
        branch latched through the class dict could leak into every other
        simulator in the process."""
        prog = _tta_prog([[Move(("imm", 0), ("op", "CU", "t", "halt"), 0)]])
        sim_a = TTASimulator(prog)
        sim_b = TTASimulator(prog)
        assert "_pending_redirect" in vars(sim_a)
        assert vars(sim_a)["_pending_redirect"] is None
        sim_a._pending_redirect = (5, 0)
        assert sim_b._pending_redirect is None
        assert not hasattr(TTASimulator, "_pending_redirect")

    def test_two_sims_in_one_process_agree(self):
        src = """
        int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void){ return fib(9) - 34; }
        """
        compiled = compile_for_machine(compile_source(src), build_machine("m-tta-2"))
        sims = [
            TTASimulator(compiled.program, mode=mode) for mode in ("checked", "fast")
        ]
        for sim in sims:
            sim.preload(compiled.data_init)
        results = [sim.run() for sim in sims]
        assert asdict(results[0]) == asdict(results[1])
        assert results[0].exit_code == 0
