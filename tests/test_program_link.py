"""Linker and program-container tests."""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.mop import Imm, LabelRef, MOp
from repro.backend.program import Program, ScheduledBlock, VLIWInstr, link_blocks
from repro.machine.machine import MachineStyle


class TestLinker:
    def test_addresses_are_cumulative(self):
        machine = build_machine("m-vliw-2")
        blocks = [
            ScheduledBlock("a", 3, [VLIWInstr(), VLIWInstr(), VLIWInstr()]),
            ScheduledBlock("b", 2, [VLIWInstr(), VLIWInstr()]),
        ]
        program = link_blocks(machine, "vliw", blocks)
        assert program.labels == {"a": 0, "b": 3}
        assert program.instruction_count == 5

    def test_label_refs_patched(self):
        machine = build_machine("m-vliw-2")
        jump = MOp("jump", None, [LabelRef("b")])
        blocks = [
            ScheduledBlock("a", 1, [VLIWInstr([jump])]),
            ScheduledBlock("b", 1, [VLIWInstr()]),
        ]
        program = link_blocks(machine, "vliw", blocks)
        assert jump.srcs[0] == Imm(1)

    def test_aliases(self):
        machine = build_machine("m-vliw-2")
        blocks = [ScheduledBlock("f:entry", 1, [VLIWInstr()])]
        program = link_blocks(machine, "vliw", blocks, aliases={"f": "f:entry"})
        assert program.address_of("f") == 0


class TestWholeProgramLayout:
    def test_start_is_at_address_zero(self):
        compiled = compile_for_machine(
            compile_source("int main(void){ return 1; }"), build_machine("m-tta-1")
        )
        assert compiled.program.labels["_start"] == 0
        assert compiled.program.labels["main"] > 0

    def test_every_block_label_resolves(self):
        src = """
        int f(int a){ if (a > 2) return a; return f(a + 1); }
        int main(void){ return f(0); }
        """
        compiled = compile_for_machine(compile_source(src), build_machine("m-vliw-3"))
        count = compiled.program.instruction_count
        for label, address in compiled.program.labels.items():
            assert 0 <= address <= count, label

    def test_scalar_extra_imm_words_counted(self):
        src = "int main(void){ unsigned a = 0xDEADBEEF; return (int)(a >> 24); }"
        compiled = compile_for_machine(compile_source(src), build_machine("mblaze-3"))
        assert compiled.program.extra_imm_words >= 1
        assert compiled.instruction_count > len(compiled.program.instrs)


class TestDeepCalls:
    def test_recursion_depth(self):
        src = """
        int depth(int n){ if (n == 0) return 0; return 1 + depth(n - 1); }
        int main(void){ return depth(40); }
        """
        for name in ("mblaze-3", "m-vliw-2", "m-tta-2"):
            compiled = compile_for_machine(compile_source(src), build_machine(name))
            from repro.sim import run_compiled

            assert run_compiled(compiled).exit_code == 40, name

    def test_stack_args_across_styles(self):
        src = """
        int weigh(int a, int b, int c, int d, int e, int f, int g){
            return a + b*2 + c*3 + d*4 + e*5 + f*6 + g*7;
        }
        int main(void){ return weigh(1, 1, 1, 1, 1, 1, 1); }
        """
        for name in ("mblaze-5", "p-vliw-3", "p-tta-2"):
            compiled = compile_for_machine(compile_source(src), build_machine(name))
            from repro.sim import run_compiled

            assert run_compiled(compiled).exit_code == 28, name
