"""Native (generated-C) engine tests.

The native engine must be bit- and cycle-exact with the checked
reference engine — exit code, cycle count and **every** statistics
counter — on every CHStone-style workload, on both machine styles.
Dynamic schedule violations (early FU reads, non-monotonic result
pushes, overlapping control transfers, out-of-range PCs and memory
accesses, cycle-budget exhaustion) must raise the same exception type
with byte-identical message text.

The tier also has an availability contract: no C compiler (or a codegen
bailout) degrades to the turbo engine with exactly one RuntimeWarning
and unchanged results, and compiled shared objects round-trip through
the artifact store's blob kind so warm runs never invoke the compiler.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import asdict

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.mop import Imm, MOp, PhysReg
from repro.backend.program import Move, Program, TTAInstr, VLIWInstr
from repro.kernels import KERNELS, compile_kernel
from repro.sim import (
    SimError,
    TTASimulator,
    VLIWSimulator,
    run_batch,
    run_compiled,
    run_compiled_profiled,
)
from repro.sim import native
from repro.sim.cgen import ENTRY_SYMBOL, build_native_program

#: one TTA and one VLIW design point; native/checked agreement is
#: style-level, not design-point-level (same policy as test_blockcompile)
DIFF_MACHINES = ("m-tta-2", "m-vliw-2")

FIB_SRC = """
int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void){ return fib(12) - 144; }
"""

requires_cc = pytest.mark.skipif(
    native.find_compiler() is None, reason="no C compiler on PATH"
)


def _compile(src, machine_name):
    return compile_for_machine(compile_source(src), build_machine(machine_name))


# ---------------------------------------------------------------------------
# differential: every workload, native vs checked, every statistic
# ---------------------------------------------------------------------------


@requires_cc
@pytest.mark.slow  # full kernel x machine differential matrix (compiles C)
@pytest.mark.parametrize("machine_name", DIFF_MACHINES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_identical_native_vs_checked(machine_name, kernel):
    compiled = compile_for_machine(compile_kernel(kernel), build_machine(machine_name))
    checked = run_compiled(compiled, mode="checked", check_connectivity=True)
    nat = run_compiled(compiled, mode="native")
    assert asdict(nat) == asdict(checked), f"{machine_name}/{kernel} diverged"
    assert nat.exit_code == 0


class TestNativeDifferentialSmoke:
    """Small native-vs-checked matrix the CI workflow runs on every push
    (selected by class name; keep it fast: 2 machines x 2 kernels)."""

    @requires_cc
    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    @pytest.mark.parametrize("kernel", ("mips", "motion"))
    def test_smoke(self, machine_name, kernel):
        compiled = compile_for_machine(
            compile_kernel(kernel), build_machine(machine_name)
        )
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        nat = run_compiled(compiled, mode="native")
        assert asdict(nat) == asdict(checked), f"{machine_name}/{kernel} diverged"
        assert nat.exit_code == 0


@requires_cc
def test_branchy_recursion_identical_native_vs_checked():
    for name in ("m-tta-1", "bm-tta-3", "p-vliw-3"):
        compiled = _compile(FIB_SRC, name)
        checked = run_compiled(compiled, mode="checked", check_connectivity=True)
        nat = run_compiled(compiled, mode="native")
        assert asdict(nat) == asdict(checked), name
        assert nat.exit_code == 0


# ---------------------------------------------------------------------------
# dynamic errors: same exception type, byte-identical message text
# ---------------------------------------------------------------------------


def _tta_prog(moves_lists, machine_name="m-tta-2"):
    machine = build_machine(machine_name)
    return Program(machine, "tta", [TTAInstr(moves) for moves in moves_lists])


def _outcome(sim):
    try:
        result = sim.run()
        return ("ok", result.exit_code, result.cycles)
    except (SimError, ValueError) as exc:
        return (type(exc).__name__, str(exc))


@requires_cc
class TestNativeDynamics:
    """Each scenario runs once on the checked reference and once on the
    native engine (fresh ``Program`` objects — the engine caches on the
    program) and the outcomes, including the exact error text, must be
    identical.  A degradation warning during the native run would mask a
    missing compiler, so warnings escalate to errors here."""

    def _diff(self, make_prog, sim_cls=TTASimulator, expect=None):
        checked = _outcome(sim_cls(make_prog(), mode="checked", max_cycles=10_000))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            nat = _outcome(sim_cls(make_prog(), mode="native", max_cycles=10_000))
        assert nat == checked
        if expect is not None:
            assert expect in checked[1]
        return checked

    def test_early_result_read(self):
        self._diff(
            lambda: _tta_prog(
                [
                    [
                        Move(("imm", 3), ("op", "ALU0", "o1", None), 0),
                        Move(("imm", 4), ("op", "ALU0", "t", "mul"), 1),
                    ],
                    [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
                ]
            ),
            expect="before the first result is due",
        )

    def test_never_triggered_read(self):
        self._diff(
            lambda: _tta_prog([[Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)]]),
            expect="never triggered",
        )

    def test_non_monotonic_result_push(self):
        # mul (latency 3) then add (latency 1): the second result would
        # be due before the first — the reference raises ValueError from
        # inside the FU, the native engine reconstructs it byte-for-byte
        self._diff(
            lambda: _tta_prog(
                [
                    [
                        Move(("imm", 3), ("op", "ALU0", "o1", None), 0),
                        Move(("imm", 4), ("op", "ALU0", "t", "mul"), 1),
                    ],
                    [Move(("imm", 1), ("op", "ALU0", "t", "add"), 0)],
                ]
            ),
            expect="not after pending",
        )

    def test_pc_out_of_range(self):
        self._diff(
            lambda: _tta_prog(
                [[Move(("imm", 100), ("op", "CU", "t", "jump"), 0)], [], [], [], []]
            ),
            expect="PC out of range: 100",
        )

    def test_overlapping_control_transfers(self):
        self._diff(
            lambda: _tta_prog(
                [
                    [Move(("imm", 0), ("op", "CU", "t", "jump"), 0)],
                    [Move(("imm", 0), ("op", "CU", "t", "jump"), 0)],
                    [],
                    [],
                    [],
                ]
            ),
            expect="overlapping control transfers",
        )

    def test_vliw_overlapping_control_transfers(self):
        def make():
            machine = build_machine("m-vliw-2")
            instrs = [
                VLIWInstr([MOp("jump", None, [Imm(0)])]),
                VLIWInstr([MOp("jump", None, [Imm(0)])]),
                VLIWInstr([]),
                VLIWInstr([]),
            ]
            return Program(machine, "vliw", instrs)

        self._diff(make, sim_cls=VLIWSimulator, expect="overlapping")

    def test_memory_access_out_of_range(self):
        self._diff(
            lambda: _tta_prog(
                [
                    [
                        Move(("imm", 42), ("op", "LSU0", "o1", None), 0),
                        Move(("imm", 0x7FFFFFFF), ("op", "LSU0", "t", "stw"), 1),
                    ],
                    [],
                    [],
                    [],
                    [Move(("imm", 0), ("op", "CU", "t", "halt"), 0)],
                ]
            ),
            expect="memory access out of range: 0x7fffffff+4",
        )

    def test_vliw_delayed_writeback_visible_late(self):
        machine = build_machine("m-vliw-2")
        r1 = PhysReg("RF0", 1)
        r2 = PhysReg("RF0", 2)
        instrs = [
            VLIWInstr([MOp("add", r1, [Imm(40), Imm(2)])]),
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # reads OLD r1 (0)
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # now reads 42
            VLIWInstr([MOp("halt", None, [Imm(0)])]),
        ]
        prog = Program(machine, "vliw", instrs)
        sim = VLIWSimulator(prog, mode="native")
        sim.run()
        assert sim.regs[r2] == 42

    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    def test_cycle_budget_exact_at_boundary(self, machine_name):
        compiled = _compile(FIB_SRC, machine_name)
        cycles = run_compiled(compiled, mode="fast").cycles
        ok = run_compiled(compiled, mode="native", max_cycles=cycles - 1)
        assert ok.cycles == cycles
        with pytest.raises(SimError, match="cycle budget"):
            run_compiled(compiled, mode="native", max_cycles=cycles - 2)


# ---------------------------------------------------------------------------
# availability: degradation to turbo, codegen bailout, FFI selection
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_no_compiler_falls_back_to_turbo_with_one_warning(self, monkeypatch):
        monkeypatch.setenv(native.NO_CC_ENV, "1")
        monkeypatch.setattr(native, "_WARNED", False)
        assert native.find_compiler() is None
        reference = run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="turbo")
        fresh = _compile(FIB_SRC, "m-tta-2")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = run_compiled(fresh, mode="native")
            second = run_compiled(fresh, mode="native")
        degradations = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(degradations) == 1, "degradation must warn exactly once"
        assert "falling back" in str(degradations[0].message)
        assert asdict(first) == asdict(reference) == asdict(second)
        # the unavailability decision is cached on the program
        assert fresh.program.predecode_cache["tta-native"] is None

    def test_vliw_degrades_too(self, monkeypatch):
        monkeypatch.setenv(native.NO_CC_ENV, "1")
        monkeypatch.setattr(native, "_WARNED", False)
        reference = run_compiled(_compile(FIB_SRC, "m-vliw-2"), mode="turbo")
        with pytest.warns(RuntimeWarning, match="falling back"):
            nat = run_compiled(_compile(FIB_SRC, "m-vliw-2"), mode="native")
        assert asdict(nat) == asdict(reference)

    def test_cc_env_override_pointing_nowhere_degrades(self, monkeypatch):
        monkeypatch.delenv(native.NO_CC_ENV, raising=False)
        monkeypatch.setenv(native.CC_ENV, "definitely-not-a-compiler-xyz")
        assert native.find_compiler() is None

    @requires_cc
    def test_codegen_bailout_degrades_cleanly(self, monkeypatch):
        monkeypatch.setattr(native, "build_native_program", lambda prog: None)
        monkeypatch.setattr(native, "_WARNED", False)
        checked = run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="checked")
        with pytest.warns(RuntimeWarning, match="could not be compiled"):
            nat = run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="native")
        assert asdict(nat) == asdict(checked)

    @requires_cc
    def test_forced_ctypes_binding_differential(self, monkeypatch):
        monkeypatch.setenv(native.FFI_ENV, "ctypes")
        monkeypatch.setattr(native, "_LIB_CACHE", {})
        for machine_name in DIFF_MACHINES:
            compiled = _compile(FIB_SRC, machine_name)
            checked = run_compiled(compiled, mode="checked")
            nat = run_compiled(compiled, mode="native")
            assert asdict(nat) == asdict(checked), machine_name
            style = compiled.program.style
            engine = compiled.program.predecode_cache[f"{style}-native"]
            assert engine.binding.kind == "ctypes"

    @requires_cc
    def test_unknown_ffi_choice_rejected(self, monkeypatch):
        monkeypatch.setenv(native.FFI_ENV, "rust")
        monkeypatch.setattr(native, "_LIB_CACHE", {})
        compiled = _compile(FIB_SRC, "m-tta-2")
        with pytest.raises(ValueError, match="unknown native FFI"):
            run_compiled(compiled, mode="native")


# ---------------------------------------------------------------------------
# shared-object caching: store blobs, process cache, pickling
# ---------------------------------------------------------------------------


@requires_cc
class TestSharedObjectCache:
    def test_store_blob_round_trip_skips_compiler_when_warm(
        self, monkeypatch, tmp_path
    ):
        from repro.pipeline.store import CACHE_DIR_ENV, NO_CACHE_ENV, default_store

        monkeypatch.delenv(NO_CACHE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(native, "_LIB_CACHE", {})
        store = default_store()
        compiled = _compile(FIB_SRC, "m-tta-2")
        checked = run_compiled(compiled, mode="checked")
        first = run_compiled(compiled, mode="native")
        assert store.stats.blob_writes == 1
        assert store.entry_count()["blobs"] == 1
        # fresh program and empty process cache: the shared object must be
        # served from the store without ever invoking the C compiler
        monkeypatch.setattr(native, "_LIB_CACHE", {})
        monkeypatch.setattr(
            native,
            "_compile_so",
            lambda *a, **k: pytest.fail("recompiled despite a warm store"),
        )
        warm = run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="native")
        assert asdict(first) == asdict(warm) == asdict(checked)

    def test_corrupt_stored_blob_recompiles(self, monkeypatch, tmp_path):
        from repro.pipeline.store import CACHE_DIR_ENV, NO_CACHE_ENV, default_store

        monkeypatch.delenv(NO_CACHE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(native, "_LIB_CACHE", {})
        store = default_store()
        checked = run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="checked")
        run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="native")
        [path] = (tmp_path / "blobs").rglob("*.bin")
        path.write_bytes(path.read_bytes()[: 100])
        monkeypatch.setattr(native, "_LIB_CACHE", {})
        nat = run_compiled(_compile(FIB_SRC, "m-tta-2"), mode="native")
        assert asdict(nat) == asdict(checked)
        assert store.stats.corrupt_dropped == 1
        assert store.stats.blob_writes == 2, "rebuilt object must be re-stored"

    def test_program_with_native_engine_still_pickles(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        checked = run_compiled(compiled, mode="checked")
        run_compiled(compiled, mode="native")
        assert compiled.program.predecode_cache  # FFI handles live here
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.program.predecode_cache == {}
        assert asdict(run_compiled(clone, mode="native")) == asdict(checked)


# ---------------------------------------------------------------------------
# driver integration: partial coverage, batch lanes, profiling, codegen
# ---------------------------------------------------------------------------


@requires_cc
class TestDriverIntegration:
    def test_partial_native_coverage_interleaves_python_fallback(self):
        """Dropping dispatchable entries forces the driver to interleave
        C-executed blocks with the precise single-cycle Python fallback;
        results must not change."""
        compiled = _compile(FIB_SRC, "m-tta-2")
        checked = run_compiled(compiled, mode="checked")
        run_compiled(compiled, mode="native")  # builds + caches the engine
        engine = compiled.program.predecode_cache["tta-native"]
        assert engine is not None
        for start in list(engine.entry_len)[::2]:
            del engine.entry_len[start]
        nat = run_compiled(compiled, mode="native")
        assert asdict(nat) == asdict(checked)

    def test_run_batch_native_lanes_match_checked(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        serial = run_compiled(compiled, mode="checked")
        lanes = run_batch(compiled, lanes=2, mode="native")
        assert len(lanes) == 2
        for result in lanes:
            assert asdict(result) == asdict(serial)

    @pytest.mark.parametrize("machine_name", DIFF_MACHINES)
    def test_native_profile_matches_turbo(self, machine_name):
        compiled = _compile(FIB_SRC, machine_name)
        _, turbo = run_compiled_profiled(compiled, mode="turbo")
        result, nat = run_compiled_profiled(compiled, mode="native")
        assert result.exit_code == 0
        assert nat.engine == "native"
        assert nat.cycles == turbo.cycles
        assert nat.pc_hits == turbo.pc_hits
        assert nat.opcode_counts == turbo.opcode_counts
        assert nat.blocks and sum(b.instructions for b in nat.blocks) == (
            nat.instructions
        )

    def test_build_native_program_shape(self):
        compiled = _compile(FIB_SRC, "m-tta-2")
        nat = build_native_program(compiled.program)
        assert nat is not None
        assert ENTRY_SYMBOL in nat.source
        assert nat.style == "tta"
        assert nat.entries and nat.n_blocks == len(nat.entries)
        assert nat.n_instrs == len(compiled.program.instrs)
        # every dispatchable entry lies inside the program
        for start, length in nat.entries:
            assert 0 <= start and start + length <= nat.n_instrs
