"""Machine model, presets, validation and encoding tests."""

from __future__ import annotations

import pytest

from repro.isa.operations import OpKind
from repro.machine import (
    Bus,
    FunctionUnit,
    Machine,
    MachineValidationError,
    RegisterFile,
    build_machine,
    encode_machine,
    preset_names,
    validate_machine,
)
from repro.machine.encoding import immediate_slot_cost
from repro.machine.machine import MachineStyle


class TestPresets:
    def test_thirteen_design_points(self):
        assert len(preset_names()) == 13

    @pytest.mark.parametrize("name", preset_names())
    def test_all_presets_validate(self, name):
        validate_machine(build_machine(name))

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            build_machine("m-tta-9")

    def test_styles(self):
        assert build_machine("mblaze-3").style is MachineStyle.SCALAR
        assert build_machine("m-vliw-2").style is MachineStyle.VLIW
        assert build_machine("m-tta-2").style is MachineStyle.TTA

    def test_rf_shapes_match_paper(self):
        # Table III RF port column.
        cases = {
            "m-vliw-2": (64, 4, 2),
            "p-vliw-2": (32, 2, 1),
            "m-tta-2": (64, 1, 1),
            "m-vliw-3": (96, 6, 3),
            "m-tta-3": (96, 2, 1),
            "p-tta-3": (32, 1, 1),
        }
        for name, (size, reads, writes) in cases.items():
            rf = build_machine(name).register_files[0]
            assert (rf.size, rf.read_ports, rf.write_ports) == (size, reads, writes)

    def test_total_registers(self):
        assert build_machine("m-vliw-2").total_registers == 64
        assert build_machine("p-vliw-3").total_registers == 96

    def test_bus_counts(self):
        assert build_machine("m-tta-1").bus_count == 3
        assert build_machine("m-tta-2").bus_count == 6
        assert build_machine("bm-tta-2").bus_count == 5
        assert build_machine("m-tta-3").bus_count == 9
        assert build_machine("bm-tta-3").bus_count == 7

    def test_one_multiplier_per_core(self):
        # Paper: every design point uses 3 DSP blocks (one multiplier).
        for name in preset_names():
            machine = build_machine(name)
            muls = [fu for fu in machine.function_units if "mul" in fu.ops]
            assert len(muls) == 1, name

    def test_bus_merged_really_pruned(self):
        full = build_machine("p-tta-2")
        merged = build_machine("bm-tta-2")
        full_pairs = sum(len(b.sources) * len(b.destinations) for b in full.buses)
        merged_pairs = sum(len(b.sources) * len(b.destinations) for b in merged.buses)
        assert merged_pairs < full_pairs


class TestComponents:
    def test_fu_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            FunctionUnit("X", OpKind.ALU, frozenset({"ldw"}))

    def test_fu_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            FunctionUnit("X", OpKind.ALU, frozenset({"frobnicate"}))

    def test_rf_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RegisterFile("RF0", 0, 1, 1)

    def test_bus_connects(self):
        bus = Bus(0, frozenset({"A.r"}), frozenset({"B.t"}))
        assert bus.connects("A.r", "B.t")
        assert not bus.connects("B.t", "A.r")

    def test_opcode_bits(self):
        fu = build_machine("m-tta-1").fu_by_name["ALU0"]
        assert fu.opcode_bits == 4  # 14 ops


class TestValidation:
    def test_missing_ops_detected(self):
        base = build_machine("m-tta-1")
        broken = Machine(
            name="broken",
            style=MachineStyle.TTA,
            issue_width=1,
            function_units=(base.control_unit,),  # no ALU/LSU
            control_unit=base.control_unit,
            register_files=base.register_files,
            buses=base.buses,
        )
        with pytest.raises(MachineValidationError):
            validate_machine(broken)

    def test_unreachable_port_detected(self):
        base = build_machine("m-tta-1")
        # buses that connect nothing to the LSU trigger
        pruned = tuple(
            Bus(b.index, b.sources, frozenset(d for d in b.destinations if d != "LSU0.t"))
            for b in base.buses
        )
        broken = Machine(
            name="broken2",
            style=MachineStyle.TTA,
            issue_width=1,
            function_units=base.function_units,
            control_unit=base.control_unit,
            register_files=base.register_files,
            buses=pruned,
        )
        with pytest.raises(MachineValidationError):
            validate_machine(broken)

    def test_vliw_must_not_have_buses(self):
        base = build_machine("m-vliw-2")
        broken = Machine(
            name="broken3",
            style=MachineStyle.VLIW,
            issue_width=2,
            function_units=base.function_units,
            control_unit=base.control_unit,
            register_files=base.register_files,
            buses=build_machine("m-tta-2").buses,
        )
        with pytest.raises(MachineValidationError):
            validate_machine(broken)


class TestEncoding:
    def test_scalar_is_32_bits(self):
        assert encode_machine(build_machine("mblaze-3")).instruction_width == 32

    def test_vliw_manual_encoding(self):
        # Paper: 2-issue slots are 4 + 2*(6+1) + 6 = 24 bits.
        enc = encode_machine(build_machine("m-vliw-2"))
        assert enc.slot_widths == (24, 24)
        assert enc.instruction_width == 48

    def test_tta_wider_than_vliw_per_issue(self):
        # Table II: the TTA instruction is 1.4x-2x the VLIW word.
        for pair in (("m-tta-2", "m-vliw-2"), ("m-tta-3", "m-vliw-3")):
            tta = encode_machine(build_machine(pair[0])).instruction_width
            vliw = encode_machine(build_machine(pair[1])).instruction_width
            assert 1.3 < tta / vliw < 2.1

    def test_bus_merging_shrinks_instruction(self):
        assert (
            encode_machine(build_machine("bm-tta-2")).instruction_width
            < encode_machine(build_machine("p-tta-2")).instruction_width
        )
        assert (
            encode_machine(build_machine("bm-tta-3")).instruction_width
            < encode_machine(build_machine("p-tta-3")).instruction_width
        )

    def test_widths_close_to_paper(self):
        from repro.eval.paper_data import PAPER_INSTR_WIDTH

        for name, paper_width in PAPER_INSTR_WIDTH.items():
            ours = encode_machine(build_machine(name)).instruction_width
            assert abs(ours - paper_width) / paper_width < 0.20, (name, ours, paper_width)

    def test_program_bits(self):
        enc = encode_machine(build_machine("m-vliw-2"))
        assert enc.program_bits(100) == 4800

    def test_immediate_slot_cost(self):
        m = build_machine("m-tta-2")  # simm 7
        assert immediate_slot_cost(m, 0) == 0
        assert immediate_slot_cost(m, 63) == 0
        assert immediate_slot_cost(m, (-64) & 0xFFFFFFFF) == 0
        assert immediate_slot_cost(m, 200) == 1
        assert immediate_slot_cost(m, 0xFFFF) == 1  # fits unsigned 16
        assert immediate_slot_cost(m, 0x12345678) == 2

    def test_scalar_imm16_free(self):
        m = build_machine("mblaze-3")
        assert immediate_slot_cost(m, 30000) == 0
        # wider constants need IMM-prefix words (the backends cap the
        # charge at one prefix for scalar/2-issue encodings)
        assert immediate_slot_cost(m, 0x10000) >= 1
