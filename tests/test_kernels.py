"""Workload tests: every CHStone-like kernel self-checks in the
reference interpreter, and independently-computed Python references
validate the algorithmic cores where a reference exists.
"""

from __future__ import annotations

import hashlib
import math

import pytest

from repro.frontend import compile_source
from repro.ir import Interpreter
from repro.kernels import ALL_KERNELS, KERNELS, compile_kernel, kernel_source
from repro.machine import preset_names


class TestAllKernels:
    @pytest.mark.parametrize("name", KERNELS)
    def test_self_check_passes_in_interpreter(self, name):
        interp = Interpreter(compile_kernel(name))
        assert interp.run() == 0, f"kernel {name} failed its self-check"

    # The unoptimised builds of the heavyweight kernels take minutes in
    # the reference interpreter; the fast four give the same coverage of
    # the optimiser-independence property.
    @pytest.mark.parametrize("name", ("adpcm", "gsm", "mips", "motion"))
    def test_unoptimized_build_agrees(self, name):
        interp = Interpreter(compile_kernel(name, optimize=False))
        assert interp.run() == 0

    def test_eight_kernels(self):
        assert len(KERNELS) == 8

    def test_extras_stay_out_of_the_paper_set(self):
        # fft is a first-class workload but NOT part of the paper's
        # benchmark matrix; published-number comparisons rely on KERNELS
        assert "fft" in ALL_KERNELS and "fft" not in KERNELS

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_source("softfloat")

    @pytest.mark.parametrize("name", ("fft",))
    def test_extra_kernel_self_checks(self, name):
        interp = Interpreter(compile_kernel(name))
        assert interp.run() == 0, f"kernel {name} failed its self-check"
        interp = Interpreter(compile_kernel(name, optimize=False))
        assert interp.run() == 0


class TestShaAgainstHashlib:
    def test_sha1_matches_hashlib_for_arbitrary_message(self):
        # Run the kernel's SHA-1 over a message of our choosing by
        # patching the source, then compare with hashlib.
        message = bytes((i * 7 + 13) & 0xFF for i in range(192))
        src = kernel_source("sha") + """
        int check_main(void)
        {
            int i;
            for (i = 0; i < 192; i++)
                msg[i] = (unsigned char)(i * 7 + 13);
            sha_hash(msg, 192);
            return 0;
        }
        """
        module = compile_source(src.replace("int main(void)", "int orig_main(void)")
                                   .replace("int check_main(void)", "int main(void)"))
        interp = Interpreter(module)
        assert interp.run() == 0
        digest_words = [
            int.from_bytes(
                interp.memory[a : a + 4], "little"
            )
            for a in range(interp.symbols["sha_h"], interp.symbols["sha_h"] + 20, 4)
        ]
        expected = hashlib.sha1(message).digest()
        expected_words = [int.from_bytes(expected[i : i + 4], "big") for i in range(0, 20, 4)]
        assert digest_words == expected_words


class TestAdpcmReference:
    def test_python_reference_matches(self):
        """Reimplement the kernel's codec in Python and compare decoder
        output word-for-word (read out of the interpreter's memory)."""
        module = compile_kernel("adpcm")
        interp = Interpreter(module)
        assert interp.run() == 0

        # Python reference with identical tables/logic.
        step_table = []
        s = 7
        for _ in range(89):
            step_table.append(s)
            s = s + s // 10 + 1
            if s > 32767:
                s = 32767
        index_adjust = [-1, -1, -1, -1, 2, 4, 6, 8]

        def clamp16(v):
            return max(-32768, min(32767, v))

        def decode(codes):
            pred, index = 0, 0
            out = []
            for c in codes:
                step = step_table[index]
                vpdiff = step >> 3
                if c & 4:
                    vpdiff += step
                if c & 2:
                    vpdiff += step >> 1
                if c & 1:
                    vpdiff += step >> 2
                pred = clamp16(pred - vpdiff if c & 8 else pred + vpdiff)
                index = max(0, min(88, index + index_adjust[c & 7]))
                out.append(pred)
            return out

        code_addr = interp.symbols["code"]
        codes = [interp.memory[code_addr + i] for i in range(128)]
        dec_addr = interp.symbols["decoded"]
        kernel_out = [
            int.from_bytes(interp.memory[dec_addr + 4 * i : dec_addr + 4 * i + 4], "little")
            for i in range(128)
        ]
        reference = [v & 0xFFFFFFFF for v in decode(codes)]
        assert kernel_out == reference


class TestMipsReference:
    def test_simulated_memory_sorted(self):
        module = compile_kernel("mips")
        interp = Interpreter(module)
        assert interp.run() == 0
        base = interp.symbols["dmem"]
        words = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(10)
        ]
        signed = [w - (1 << 32) if w & (1 << 31) else w for w in words]
        assert signed == sorted([83, 2, 77, -19, 45, 45, 0, 501, -320, 9])


class TestJpegReference:
    def test_zigzag_is_the_standard_scan(self):
        module = compile_kernel("jpeg")
        interp = Interpreter(module)
        assert interp.run() == 0
        base = interp.symbols["zigzag"]
        ours = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(64)
        ]
        # independent reference: sort indices by (diagonal, direction)
        ref = []
        for d in range(15):
            coords = [(y, d - y) for y in range(max(0, d - 7), min(7, d) + 1)]
            if d % 2 == 0:
                coords.reverse()
            ref.extend(y * 8 + x for (y, x) in coords)
        assert ours == ref


class TestGsmReference:
    def test_schur_coefficients_match_python(self):
        module = compile_kernel("gsm")
        interp = Interpreter(module)
        assert interp.run() == 0

        base = interp.symbols["L_ACF"]
        l_acf = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(9)
        ]
        l_acf = [v - (1 << 32) if v & (1 << 31) else v for v in l_acf]

        # Python reimplementation of the kernel's fixed-point Schur.
        def sat16(v):
            return max(-32768, min(32767, v))

        def gsm_mult_r(a, b):
            if a == -32768 and b == -32768:
                return 32767
            return (a * b + 16384) >> 15

        def gsm_norm(v):
            n = 0
            while v < 0x40000000:
                v <<= 1
                n += 1
            return n

        def gsm_div(num, den):
            div = 0
            for _ in range(15):
                div <<= 1
                num <<= 1
                if num >= den:
                    num -= den
                    div += 1
            return div

        refl = [0] * 8
        if l_acf[0] != 0:
            temp = gsm_norm(l_acf[0])
            P = [(v << temp) >> 16 for v in l_acf]
            K = [0] * 9
            for i in range(1, 8):
                K[9 - i] = P[i]
            for n in range(1, 9):
                if P[0] < abs(P[1]):
                    for i in range(n, 9):
                        refl[i - 1] = 0
                    break
                refl[n - 1] = gsm_div(abs(P[1]), P[0])
                if P[1] > 0:
                    refl[n - 1] = -refl[n - 1]
                if n == 8:
                    break
                P[0] = sat16(P[0] + gsm_mult_r(P[1], refl[n - 1]))
                for m in range(1, 9 - n):
                    P[m] = sat16(P[m + 1] + gsm_mult_r(K[9 - m], refl[n - 1]))
                    K[9 - m] = sat16(K[9 - m] + gsm_mult_r(P[m + 1], refl[n - 1]))

        base = interp.symbols["refl"]
        kernel_refl = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(8)
        ]
        kernel_refl = [v - (1 << 32) if v & (1 << 31) else v for v in kernel_refl]
        assert kernel_refl == refl


class TestFftDifferential:
    """fft runs clean on every preset, byte-identical across engines."""

    @pytest.mark.parametrize("preset", preset_names())
    def test_all_presets_all_engines(self, preset):
        from repro.fuzz.diff import ALL_MODES, FuzzCase, run_case

        report = run_case(
            FuzzCase(
                machine=preset,
                kernel="fft",
                source=kernel_source("fft"),
                expected_exit=0,
                modes=ALL_MODES,
            )
        )
        assert not report.divergences, "\n".join(
            d.summary() for d in report.divergences
        )
        # scalar presets run one engine; TTA/VLIW presets run all five
        assert len(report.runs) in (1, len(ALL_MODES))
        for record in report.runs.values():
            assert record["exit_code"] == 0


class TestFftReference:
    """The kernel's spectrum matches an independent Python FFT.

    Two references: an exact fixed-point model re-deriving the Q15
    butterfly arithmetic (twiddles recomputed from ``math.cos``/``sin``,
    not copied from the kernel), and a floating-point DFT bounding the
    total quantization error.
    """

    N = 64

    def _q15_fft(self, re, im):
        n = self.N
        tw = [
            (
                round(math.cos(2 * math.pi * k / n) * 32767),
                round(-math.sin(2 * math.pi * k / n) * 32767),
            )
            for k in range(n // 2)
        ]
        re, im = list(re), list(im)
        for i in range(n):
            j = int(format(i, "06b")[::-1], 2)
            if j > i:
                re[i], re[j] = re[j], re[i]
                im[i], im[j] = im[j], im[i]
        size = 2
        while size <= n:
            half, step = size // 2, n // size
            for base in range(0, n, size):
                for j in range(half):
                    wr, wi = tw[j * step]
                    a, b = base + j, base + j + half
                    tr = ((wr * re[b]) >> 15) - ((wi * im[b]) >> 15)
                    ti = ((wr * im[b]) >> 15) + ((wi * re[b]) >> 15)
                    re[b], im[b] = (re[a] - tr) >> 1, (im[a] - ti) >> 1
                    re[a], im[a] = (re[a] + tr) >> 1, (im[a] + ti) >> 1
            size *= 2
        return re, im

    def _run_forward_only(self):
        # patch the kernel to stop after the forward transform so the
        # spectrum is still in memory when we read it out
        src = kernel_source("fft") + """
        int check_main(void)
        {
            int n;
            for (n = 0; n < 64; n++) {
                fft_re[n] = signal[n];
                fft_im[n] = 0;
            }
            fft_run(0);
            return 0;
        }
        """
        module = compile_source(
            src.replace("int main(void)", "int orig_main(void)")
               .replace("int check_main(void)", "int main(void)")
        )
        interp = Interpreter(module)
        assert interp.run() == 0

        def words(symbol):
            base = interp.symbols[symbol]
            vals = [
                int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
                for i in range(self.N)
            ]
            return [v - (1 << 32) if v & (1 << 31) else v for v in vals]

        return words("signal"), words("fft_re"), words("fft_im")

    def test_matches_fixed_point_model_exactly(self):
        signal, out_re, out_im = self._run_forward_only()
        ref_re, ref_im = self._q15_fft(signal, [0] * self.N)
        assert out_re == ref_re
        assert out_im == ref_im

    def test_close_to_float_dft(self):
        signal, out_re, out_im = self._run_forward_only()
        n = self.N
        for k in range(n):
            acc = sum(
                signal[t] * complex(math.cos(2 * math.pi * k * t / n),
                                    -math.sin(2 * math.pi * k * t / n))
                for t in range(n)
            ) / n
            # per-stage rounding accumulates at most a few LSBs
            assert abs(out_re[k] - acc.real) <= 8, f"bin {k} re"
            assert abs(out_im[k] - acc.imag) <= 8, f"bin {k} im"
