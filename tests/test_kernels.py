"""Workload tests: every CHStone-like kernel self-checks in the
reference interpreter, and independently-computed Python references
validate the algorithmic cores where a reference exists.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.frontend import compile_source
from repro.ir import Interpreter
from repro.kernels import KERNELS, compile_kernel, kernel_source


class TestAllKernels:
    @pytest.mark.parametrize("name", KERNELS)
    def test_self_check_passes_in_interpreter(self, name):
        interp = Interpreter(compile_kernel(name))
        assert interp.run() == 0, f"kernel {name} failed its self-check"

    # The unoptimised builds of the heavyweight kernels take minutes in
    # the reference interpreter; the fast four give the same coverage of
    # the optimiser-independence property.
    @pytest.mark.parametrize("name", ("adpcm", "gsm", "mips", "motion"))
    def test_unoptimized_build_agrees(self, name):
        interp = Interpreter(compile_kernel(name, optimize=False))
        assert interp.run() == 0

    def test_eight_kernels(self):
        assert len(KERNELS) == 8

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_source("softfloat")


class TestShaAgainstHashlib:
    def test_sha1_matches_hashlib_for_arbitrary_message(self):
        # Run the kernel's SHA-1 over a message of our choosing by
        # patching the source, then compare with hashlib.
        message = bytes((i * 7 + 13) & 0xFF for i in range(192))
        src = kernel_source("sha") + """
        int check_main(void)
        {
            int i;
            for (i = 0; i < 192; i++)
                msg[i] = (unsigned char)(i * 7 + 13);
            sha_hash(msg, 192);
            return 0;
        }
        """
        module = compile_source(src.replace("int main(void)", "int orig_main(void)")
                                   .replace("int check_main(void)", "int main(void)"))
        interp = Interpreter(module)
        assert interp.run() == 0
        digest_words = [
            int.from_bytes(
                interp.memory[a : a + 4], "little"
            )
            for a in range(interp.symbols["sha_h"], interp.symbols["sha_h"] + 20, 4)
        ]
        expected = hashlib.sha1(message).digest()
        expected_words = [int.from_bytes(expected[i : i + 4], "big") for i in range(0, 20, 4)]
        assert digest_words == expected_words


class TestAdpcmReference:
    def test_python_reference_matches(self):
        """Reimplement the kernel's codec in Python and compare decoder
        output word-for-word (read out of the interpreter's memory)."""
        module = compile_kernel("adpcm")
        interp = Interpreter(module)
        assert interp.run() == 0

        # Python reference with identical tables/logic.
        step_table = []
        s = 7
        for _ in range(89):
            step_table.append(s)
            s = s + s // 10 + 1
            if s > 32767:
                s = 32767
        index_adjust = [-1, -1, -1, -1, 2, 4, 6, 8]

        def clamp16(v):
            return max(-32768, min(32767, v))

        def decode(codes):
            pred, index = 0, 0
            out = []
            for c in codes:
                step = step_table[index]
                vpdiff = step >> 3
                if c & 4:
                    vpdiff += step
                if c & 2:
                    vpdiff += step >> 1
                if c & 1:
                    vpdiff += step >> 2
                pred = clamp16(pred - vpdiff if c & 8 else pred + vpdiff)
                index = max(0, min(88, index + index_adjust[c & 7]))
                out.append(pred)
            return out

        code_addr = interp.symbols["code"]
        codes = [interp.memory[code_addr + i] for i in range(128)]
        dec_addr = interp.symbols["decoded"]
        kernel_out = [
            int.from_bytes(interp.memory[dec_addr + 4 * i : dec_addr + 4 * i + 4], "little")
            for i in range(128)
        ]
        reference = [v & 0xFFFFFFFF for v in decode(codes)]
        assert kernel_out == reference


class TestMipsReference:
    def test_simulated_memory_sorted(self):
        module = compile_kernel("mips")
        interp = Interpreter(module)
        assert interp.run() == 0
        base = interp.symbols["dmem"]
        words = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(10)
        ]
        signed = [w - (1 << 32) if w & (1 << 31) else w for w in words]
        assert signed == sorted([83, 2, 77, -19, 45, 45, 0, 501, -320, 9])


class TestJpegReference:
    def test_zigzag_is_the_standard_scan(self):
        module = compile_kernel("jpeg")
        interp = Interpreter(module)
        assert interp.run() == 0
        base = interp.symbols["zigzag"]
        ours = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(64)
        ]
        # independent reference: sort indices by (diagonal, direction)
        ref = []
        for d in range(15):
            coords = [(y, d - y) for y in range(max(0, d - 7), min(7, d) + 1)]
            if d % 2 == 0:
                coords.reverse()
            ref.extend(y * 8 + x for (y, x) in coords)
        assert ours == ref


class TestGsmReference:
    def test_schur_coefficients_match_python(self):
        module = compile_kernel("gsm")
        interp = Interpreter(module)
        assert interp.run() == 0

        base = interp.symbols["L_ACF"]
        l_acf = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(9)
        ]
        l_acf = [v - (1 << 32) if v & (1 << 31) else v for v in l_acf]

        # Python reimplementation of the kernel's fixed-point Schur.
        def sat16(v):
            return max(-32768, min(32767, v))

        def gsm_mult_r(a, b):
            if a == -32768 and b == -32768:
                return 32767
            return (a * b + 16384) >> 15

        def gsm_norm(v):
            n = 0
            while v < 0x40000000:
                v <<= 1
                n += 1
            return n

        def gsm_div(num, den):
            div = 0
            for _ in range(15):
                div <<= 1
                num <<= 1
                if num >= den:
                    num -= den
                    div += 1
            return div

        refl = [0] * 8
        if l_acf[0] != 0:
            temp = gsm_norm(l_acf[0])
            P = [(v << temp) >> 16 for v in l_acf]
            K = [0] * 9
            for i in range(1, 8):
                K[9 - i] = P[i]
            for n in range(1, 9):
                if P[0] < abs(P[1]):
                    for i in range(n, 9):
                        refl[i - 1] = 0
                    break
                refl[n - 1] = gsm_div(abs(P[1]), P[0])
                if P[1] > 0:
                    refl[n - 1] = -refl[n - 1]
                if n == 8:
                    break
                P[0] = sat16(P[0] + gsm_mult_r(P[1], refl[n - 1]))
                for m in range(1, 9 - n):
                    P[m] = sat16(P[m + 1] + gsm_mult_r(K[9 - m], refl[n - 1]))
                    K[9 - m] = sat16(K[9 - m] + gsm_mult_r(P[m + 1], refl[n - 1]))

        base = interp.symbols["refl"]
        kernel_refl = [
            int.from_bytes(interp.memory[base + 4 * i : base + 4 * i + 4], "little")
            for i in range(8)
        ]
        kernel_refl = [v - (1 << 32) if v & (1 << 31) else v for v in kernel_refl]
        assert kernel_refl == refl
