"""Evaluation-harness tests on a reduced sweep (two fast kernels, all 13
machines), asserting the paper's comparative shape."""

from __future__ import annotations

import pytest

from repro.eval import figure5, figure6, format_table, run_sweep, table2, table3, table4
from repro.machine import preset_names

#: fast kernels keep the full-13-machine sweep test-sized
FAST = ("mips", "motion")


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(kernels=FAST)


class TestSweep:
    def test_every_pair_measured_and_correct(self, sweep):
        assert len(sweep) == 13 * len(FAST)
        for result in sweep.values():
            assert result.exit_code == 0
            assert result.cycles > 0
            assert result.program_bits > 0

    def test_cached(self, sweep):
        again = run_sweep(kernels=FAST)
        for key in sweep:
            assert again[key] is sweep[key]


class TestTable2Shape(object):
    def test_rows_cover_all_machines(self, sweep):
        rows = table2(FAST)
        assert [r["machine"] for r in rows] == list(preset_names())

    def test_monolithic_tta_program_size_overhead(self, sweep):
        rows = {r["machine"]: r for r in table2(FAST)}
        # Paper: m-tta-2 programs are 1.2x-1.5x m-vliw-2's.
        for kernel in FAST:
            rel = rows["m-tta-2"][kernel]
            assert 1.0 < rel < 2.0, (kernel, rel)

    def test_bus_merging_shrinks_images(self, sweep):
        rows = {r["machine"]: r for r in table2(FAST)}
        for kernel in FAST:
            assert rows["bm-tta-2"][kernel] < rows["p-tta-2"][kernel]
            assert rows["bm-tta-3"][kernel] < rows["p-tta-3"][kernel]

    def test_vliw_split_rf_near_baseline(self, sweep):
        rows = {r["machine"]: r for r in table2(FAST)}
        for kernel in FAST:
            assert 0.9 < rows["p-vliw-2"][kernel] < 1.2


class TestTable4Shape:
    def test_tta_beats_vliw_cycles(self, sweep):
        rows = {r["machine"]: r for r in table4(FAST)}
        for kernel in FAST:
            assert rows["m-tta-2"][kernel] < 1.0, kernel
            assert rows["m-tta-3"][kernel] < 1.0, kernel

    def test_mblaze5_relative_band(self, sweep):
        rows = {r["machine"]: r for r in table4(FAST)}
        for kernel in FAST:
            assert 0.7 < rows["mblaze-5"][kernel] < 1.0

    def test_partitioned_vliw_close_to_monolithic(self, sweep):
        rows = {r["machine"]: r for r in table4(FAST)}
        for kernel in FAST:
            assert 0.9 < rows["p-vliw-2"][kernel] < 1.2


class TestFigures:
    def test_figure5_panels(self, sweep):
        panels = figure5(FAST)
        assert set(panels) == {"mblaze-3", "m-vliw-2", "m-vliw-3"}
        for baseline, panel in panels.items():
            assert panel[baseline] == {k: 1.0 for k in FAST}

    def test_figure5_tta_runtime_wins(self, sweep):
        panels = figure5(FAST)
        for kernel in FAST:
            assert panels["m-vliw-2"]["m-tta-2"][kernel] < 1.0

    def test_figure6_points(self, sweep):
        points = figure6(FAST)
        assert set(points) == set(preset_names())
        assert points["m-tta-1"]["runtime"] == 1.0
        # the monolithic 3-issue VLIW must be the area outlier
        assert points["m-vliw-3"]["slices"] == max(p["slices"] for p in points.values())

    def test_figure6_tta_efficiency(self, sweep):
        # Paper Fig. 6: the 2-issue TTA dominates the 2-issue VLIW
        # (faster AND smaller).
        points = figure6(FAST)
        assert points["m-tta-2"]["runtime"] < points["m-vliw-2"]["runtime"]
        assert points["m-tta-2"]["slices"] < points["m-vliw-2"]["slices"]


class TestRendering:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "22" in lines[4]

    def test_table3_is_sweep_free(self):
        rows = table3()
        assert len(rows) == 13
        by_name = {r["machine"]: r for r in rows}
        assert by_name["m-vliw-2"]["rf_read_ports"] == 4
        assert by_name["m-tta-2"]["fmax_rel"] > 1.0
