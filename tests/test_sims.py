"""Simulator unit tests: memory, timing models, error detection."""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.mop import Imm, MOp, PhysReg
from repro.backend.program import Move, Program, TTAInstr, VLIWInstr
from repro.sim import DataMemory, SimError, TTASimulator, VLIWSimulator, run_compiled


class TestDataMemory:
    def test_word_roundtrip(self):
        mem = DataMemory(64)
        mem.store("stw", 8, 0xDEADBEEF)
        assert mem.load("ldw", 8) == 0xDEADBEEF

    def test_little_endian(self):
        mem = DataMemory(64)
        mem.store("stw", 0, 0x11223344)
        assert mem.load("ldqu", 0) == 0x44
        assert mem.load("ldqu", 3) == 0x11

    def test_sign_extension(self):
        mem = DataMemory(64)
        mem.store("stq", 0, 0x80)
        assert mem.load("ldq", 0) == 0xFFFFFF80
        assert mem.load("ldqu", 0) == 0x80
        mem.store("sth", 4, 0x8000)
        assert mem.load("ldh", 4) == 0xFFFF8000
        assert mem.load("ldhu", 4) == 0x8000

    def test_truncating_stores(self):
        mem = DataMemory(64)
        mem.store("stq", 0, 0x1FF)
        assert mem.load("ldqu", 0) == 0xFF

    def test_bounds_checked(self):
        mem = DataMemory(16)
        with pytest.raises(SimError):
            mem.load("ldw", 14)
        with pytest.raises(SimError):
            mem.store("stw", 100, 1)

    def test_preload(self):
        mem = DataMemory(16)
        mem.preload(4, b"\x2a\x00\x00\x00")
        assert mem.load("ldw", 4) == 42

    def test_boundary_accesses_exact_fit(self):
        # The last legal address for each width is size - width.
        mem = DataMemory(16)
        mem.store("stw", 12, 0xAABBCCDD)
        assert mem.load("ldw", 12) == 0xAABBCCDD
        mem.store("sth", 14, 0x1234)
        assert mem.load("ldhu", 14) == 0x1234
        mem.store("stq", 15, 0x7F)
        assert mem.load("ldqu", 15) == 0x7F

    def test_boundary_accesses_one_past(self):
        mem = DataMemory(16)
        with pytest.raises(SimError):
            mem.load("ldw", 13)
        with pytest.raises(SimError):
            mem.load("ldhu", 15)
        with pytest.raises(SimError):
            mem.load("ldqu", 16)
        with pytest.raises(SimError):
            mem.store("sth", 15, 0)
        with pytest.raises(SimError):
            mem.store("stq", 16, 0)

    def test_negative_address_wraps_then_bounds_checked(self):
        # Addresses are masked to 32 bits first, so -4 becomes 0xFFFFFFFC,
        # which is out of range for any small memory -- not a Python
        # negative-index read of the tail of the bytearray.
        mem = DataMemory(64)
        with pytest.raises(SimError):
            mem.load("ldw", -4)
        with pytest.raises(SimError):
            mem.store("stw", -4, 1)

    def test_negative_address_error_reports_premask_value(self):
        # The error carries the address the program produced (-0x4), not
        # the 32-bit wrapped form (0xfffffffc) -- the raw value is what a
        # user can grep for in their source.
        mem = DataMemory(64)
        with pytest.raises(SimError, match=r"-0x4\+4"):
            mem.load("ldw", -4)
        with pytest.raises(SimError, match=r"-0x8\+2"):
            mem.store("sth", -8, 1)
        with pytest.raises(SimError, match=r"-0x1\+4"):
            mem.preload(-1, b"\x00\x00\x00\x00")

    def test_preload_bounds_checked(self):
        mem = DataMemory(8)
        with pytest.raises(SimError):
            mem.preload(6, b"\x00\x00\x00\x00")

    def test_preload_uses_same_address_normalization(self):
        # preload wraps addresses through the same path as load/store, so
        # a value just past 2**32 lands back inside the memory image.
        mem = DataMemory(16)
        mem.preload((1 << 32) + 8, b"\x2a\x00\x00\x00")
        assert mem.load("ldw", 8) == 42

    def test_store_masks_wide_values(self):
        # Values wider than the access size are truncated, and values wider
        # than 32 bits are masked before the width truncation.
        mem = DataMemory(64)
        mem.store("stw", 0, 0x1_2345_6789)
        assert mem.load("ldw", 0) == 0x2345_6789
        mem.store("sth", 8, 0xABCD_1234)
        assert mem.load("ldhu", 8) == 0x1234
        mem.store("stq", 12, 0xFF02)
        assert mem.load("ldqu", 12) == 0x02

    def test_sign_extension_positive_values_unchanged(self):
        # Sub-word loads of values with the sign bit clear agree between
        # the signed and unsigned variants.
        mem = DataMemory(16)
        mem.store("stq", 0, 0x7F)
        assert mem.load("ldq", 0) == mem.load("ldqu", 0) == 0x7F
        mem.store("sth", 2, 0x7FFF)
        assert mem.load("ldh", 2) == mem.load("ldhu", 2) == 0x7FFF

    def test_unknown_ops_rejected(self):
        mem = DataMemory(16)
        with pytest.raises(SimError):
            mem.load("ldx", 0)
        with pytest.raises(SimError):
            mem.store("stx", 0, 1)


class TestNegativeAddressAcrossSimulators:
    """A negative array index wraps through 32-bit address arithmetic to
    an address far beyond the data memory; every simulator must reject
    it with the out-of-range error, never read a wrapped-around byte."""

    NEG_SRC = """
    int g[2] = {1, 2};
    int main(void) { int i = -300000; return g[i]; }
    """

    @pytest.mark.parametrize("machine_name", ["m-tta-2", "m-vliw-2", "mblaze-3"])
    def test_negative_index_out_of_range(self, machine_name):
        compiled = compile_for_machine(
            compile_source(self.NEG_SRC), build_machine(machine_name)
        )
        with pytest.raises(SimError, match="out of range"):
            run_compiled(compiled)

    @pytest.mark.parametrize("mode", ["checked", "fast", "turbo"])
    def test_all_engines_agree_on_the_error(self, mode):
        for machine_name in ("m-tta-2", "m-vliw-2"):
            compiled = compile_for_machine(
                compile_source(self.NEG_SRC), build_machine(machine_name)
            )
            with pytest.raises(SimError, match="out of range"):
                run_compiled(compiled, mode=mode)


class TestScalarTiming:
    def _cycles(self, src: str, machine_name: str) -> int:
        compiled = compile_for_machine(compile_source(src), build_machine(machine_name))
        result = run_compiled(compiled)
        assert result.exit_code == 0
        return result.cycles

    def test_load_stall_charged_on_3_stage(self):
        src = """
        int g[32];
        int main(void){ int i; int s=0; for(i=0;i<32;i++) s+=g[i]; return s; }
        """
        assert self._cycles(src, "mblaze-3") > self._cycles(src, "mblaze-5")

    def test_branches_cost_more_taken(self):
        loop = "int main(void){ int i; int s=0; for(i=0;i<50;i++) s+=1; return s-50; }"
        straight = "int main(void){ int s=0;" + "s+=1;" * 50 + "return s-50; }"
        assert self._cycles(loop, "mblaze-3") > self._cycles(straight, "mblaze-3")


class TestTTAVerifier:
    def _machine_prog(self, moves_lists):
        machine = build_machine("m-tta-2")
        instrs = [TTAInstr(moves) for moves in moves_lists]
        return Program(machine, "tta", instrs)

    def test_double_bus_use_detected(self):
        prog = self._machine_prog(
            [[Move(("imm", 0), ("rf", "RF0", 1), 0), Move(("imm", 1), ("rf", "RF0", 2), 0)]]
        )
        with pytest.raises(SimError, match="bus 0 used twice"):
            TTASimulator(prog).run()

    def test_write_port_oversubscription_detected(self):
        prog = self._machine_prog(
            [[Move(("imm", 0), ("rf", "RF0", 1), 0), Move(("imm", 1), ("rf", "RF0", 2), 1)]]
        )
        with pytest.raises(SimError, match="write ports"):
            TTASimulator(prog).run()

    def test_early_result_read_detected(self):
        # trigger a mul (latency 3) and read the result the next cycle
        prog = self._machine_prog(
            [
                [
                    Move(("imm", 3), ("op", "ALU0", "o1", None), 0),
                    Move(("imm", 4), ("op", "ALU0", "t", "mul"), 1),
                ],
                [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
            ]
        )
        with pytest.raises(SimError, match="read at"):
            TTASimulator(prog).run()

    def test_connectivity_check(self):
        # bm-tta-2 bus 3 cannot read from the register files
        machine = build_machine("bm-tta-2")
        prog = Program(
            machine,
            "tta",
            [TTAInstr([Move(("rf", "RF0", 1), ("rf", "RF1", 1), 3)])],
        )
        with pytest.raises(SimError, match="not routable"):
            TTASimulator(prog, check_connectivity=True).run()

    def test_semi_virtual_latching_multiple_inflight(self):
        # mul at cycle 0 (due 3), shl at cycle 2 (due 4): a read at cycle 3
        # must return the mul result, a read at 4 the shl result.
        moves = [
            [
                Move(("imm", 6), ("op", "ALU0", "o1", None), 0),
                Move(("imm", 7), ("op", "ALU0", "t", "mul"), 1),
            ],
            [],
            [
                Move(("imm", 2), ("op", "ALU0", "o1", None), 0),
                Move(("imm", 1), ("op", "ALU0", "t", "shl"), 1),
            ],
            [Move(("fu", "ALU0"), ("rf", "RF0", 1), 0)],
            [Move(("fu", "ALU0"), ("rf", "RF0", 2), 0)],
            [
                Move(("imm", 0), ("op", "CU", "t", "halt"), 0),
            ],
        ]
        prog = self._machine_prog(moves)
        sim = TTASimulator(prog)
        sim.run()
        assert sim.rfs["RF0"][1] == 42  # mul result
        assert sim.rfs["RF0"][2] == 4  # 1 << 2


class TestVLIWTiming:
    def test_delayed_writeback_visible_late(self):
        machine = build_machine("m-vliw-2")
        r1 = PhysReg("RF0", 1)
        r2 = PhysReg("RF0", 2)
        instrs = [
            VLIWInstr([MOp("add", r1, [Imm(40), Imm(2)])]),  # wb at cycle 1
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # reads OLD r1 (0)
            VLIWInstr([MOp("add", r2, [r1, Imm(0)])]),  # now reads 42
            VLIWInstr([MOp("halt", None, [Imm(0)])]),
        ]
        prog = Program(machine, "vliw", instrs)
        sim = VLIWSimulator(prog)
        sim.run()
        # the second bundle executed before r1's write-back was visible
        assert sim.regs[r2] == 42

    def test_overlapping_control_rejected(self):
        machine = build_machine("m-vliw-2")
        instrs = [
            VLIWInstr([MOp("jump", None, [Imm(0)])]),
            VLIWInstr([MOp("jump", None, [Imm(0)])]),
            VLIWInstr([]),
            VLIWInstr([]),
        ]
        prog = Program(machine, "vliw", instrs)
        with pytest.raises(SimError, match="overlapping"):
            VLIWSimulator(prog).run()


class TestRunCompiled:
    def test_exit_code_plumbed(self):
        compiled = compile_for_machine(
            compile_source("int main(void){ return 123; }"), build_machine("m-tta-1")
        )
        assert run_compiled(compiled).exit_code == 123

    def test_data_preloaded(self):
        src = """
        int magic[2] = {1000, 337};
        int main(void){ return magic[0] + magic[1]; }
        """
        compiled = compile_for_machine(compile_source(src), build_machine("mblaze-3"))
        assert run_compiled(compiled).exit_code == 1337
