"""IR construction, liveness, module layout and interpreter tests."""

from __future__ import annotations

import pytest

from repro.ir import (
    BasicBlock,
    Const,
    Function,
    GlobalVar,
    IRBuilder,
    InterpError,
    Interpreter,
    Module,
    compute_liveness,
)
from repro.ir.instructions import BinOp, Copy, Jump, Ret, VReg


def make_module(build):
    """Helper: build a single-function module via a callback(fn, builder)."""
    module = Module()
    fn = Function("main", 0)
    module.add_function(fn)
    b = IRBuilder(fn)
    b.set_block(fn.new_block("entry"))
    build(fn, b)
    module.verify()
    return module


class TestFunctionStructure:
    def test_verify_requires_terminator(self):
        fn = Function("f", 0)
        fn.new_block("entry")
        with pytest.raises(ValueError):
            fn.verify()

    def test_verify_rejects_unknown_successor(self):
        fn = Function("f", 0)
        block = fn.new_block("entry")
        block.terminator = Jump("nowhere")
        with pytest.raises(ValueError):
            fn.verify()

    def test_duplicate_frame_slot(self):
        fn = Function("f", 0)
        fn.add_frame_slot("a", 4)
        with pytest.raises(ValueError):
            fn.add_frame_slot("a", 8)

    def test_append_after_terminator(self):
        block = BasicBlock("b")
        block.terminator = Ret(None)
        with pytest.raises(ValueError):
            block.append(Copy(VReg(0), Const(1)))

    def test_predecessors(self):
        fn = Function("f", 0)
        a = fn.new_block("a")
        b = fn.new_block("b")
        a.terminator = Jump(b.name)
        b.terminator = Ret(None)
        assert fn.predecessors()[b.name] == [a.name]


class TestLiveness:
    def test_loop_carried_value_is_live(self):
        fn = Function("f", 0)
        b = IRBuilder(fn)
        entry = fn.new_block("entry")
        loop = fn.new_block("loop")
        done = fn.new_block("done")
        b.set_block(entry)
        acc = b.const(0)
        b.jump(loop)
        b.set_block(loop)
        b.binop("add", acc, Const(1), dest=acc)
        cond = b.binop("gt", Const(10), acc)
        b.cjump(cond, loop, done)
        b.set_block(done)
        b.ret(acc)
        live_in, live_out = compute_liveness(fn)
        assert acc in live_out[loop.name]
        assert acc in live_in[loop.name]
        assert acc in live_out[entry.name]
        assert cond not in live_out[loop.name]

    def test_dead_value_not_live(self):
        fn = Function("f", 0)
        b = IRBuilder(fn)
        entry = fn.new_block("entry")
        b.set_block(entry)
        dead = b.const(42)
        b.ret(Const(0))
        _, live_out = compute_liveness(fn)
        assert dead not in live_out[entry.name]


class TestModuleLayout:
    def test_layout_is_deterministic_and_aligned(self):
        module = Module()
        module.add_global(GlobalVar("a", 3, align=1))
        module.add_global(GlobalVar("b", 8, align=4))
        table = module.layout_globals(base=0x100)
        assert table["a"] == 0x100
        assert table["b"] == 0x104  # aligned past a
        assert module.data_end() == 0x10C

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global(GlobalVar("a", 4))
        with pytest.raises(ValueError):
            module.add_global(GlobalVar("a", 4))

    def test_oversized_init_rejected(self):
        with pytest.raises(ValueError):
            GlobalVar("x", 2, init=b"toolong")

    def test_missing_entry_rejected(self):
        module = Module()
        with pytest.raises(ValueError):
            module.verify()


class TestInterpreter:
    def test_memory_init_from_globals(self):
        module = Module()
        module.add_global(GlobalVar("blob", 4, init=b"\x01\x02\x03\x04"))
        fn = Function("main", 0)
        module.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(fn.new_block("entry"))
        from repro.ir.instructions import Sym

        value = b.load("ldw", Sym("blob"))
        b.ret(value)
        interp = Interpreter(module)
        assert interp.run() == 0x04030201

    def test_typed_loads(self):
        module = Module()
        module.add_global(GlobalVar("blob", 4, init=b"\xff\x80\x00\x00"))
        fn = Function("main", 0)
        module.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(fn.new_block("entry"))
        from repro.ir.instructions import Sym

        q = b.load("ldq", Sym("blob"))  # sign-extended 0xFF
        qu = b.load("ldqu", Sym("blob"))
        total = b.binop("sub", q, qu)
        b.ret(total)
        assert Interpreter(module).run() == (0xFFFFFFFF - 0xFF + 0x100000000) % 2**32

    def test_undefined_function_call(self):
        def build(fn, b):
            b.call("nope", [])
            b.ret(Const(0))

        module = make_module(build)
        with pytest.raises(InterpError):
            Interpreter(module).run()

    def test_step_budget(self):
        def build(fn, b):
            loop = fn.new_block("loop")
            b.jump(loop)
            b.set_block(loop)
            b.jump(loop)

        module = make_module(build)
        interp = Interpreter(module, max_steps=1000)
        with pytest.raises(InterpError):
            interp.run()

    def test_out_of_range_memory(self):
        def build(fn, b):
            b.store("stw", Const(0xFFFFFFF0), Const(1))
            b.ret(Const(0))

        module = make_module(build)
        with pytest.raises(InterpError):
            Interpreter(module).run()

    def test_stats_collected(self):
        def build(fn, b):
            x = b.binop("mul", Const(6), Const(7))
            b.store("stw", Const(0x200), x)
            y = b.load("ldw", Const(0x200))
            b.ret(y)

        module = make_module(build)
        interp = Interpreter(module)
        assert interp.run() == 42
        assert interp.stats.loads == 1
        assert interp.stats.stores == 1
