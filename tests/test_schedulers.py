"""Scheduler tests: correctness across machines plus TTA-specific
invariants (the simulator itself verifies structural constraints on
every executed instruction when ``check_connectivity`` is on)."""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.program import TTAInstr
from repro.ir import Interpreter
from repro.sim import run_compiled

SNIPPETS = {
    "chain": """
        int main(void){
            int a = 3; int i;
            for (i = 0; i < 20; i++) a = a * 5 + 1;
            return a & 0xFF;
        }
    """,
    "memory": """
        int buf[16];
        int main(void){
            int i; int s = 0;
            for (i = 0; i < 16; i++) buf[i] = i * i;
            for (i = 15; i >= 0; i--) s += buf[i];
            return s & 0xFF;
        }
    """,
    "branchy": """
        int main(void){
            int i; int s = 0;
            for (i = 0; i < 40; i++) {
                if (i % 3 == 0) s += i;
                else if (i % 3 == 1) s -= i;
                else s ^= i;
            }
            return s & 0xFF;
        }
    """,
    "calls": """
        int twice(int v){ return v * 2; }
        int offset(int v){ return twice(v) + 1; }
        int main(void){
            int i; int s = 0;
            for (i = 0; i < 10; i++) s += offset(i);
            return s & 0xFF;
        }
    """,
    "wide_constants": """
        int main(void){
            unsigned a = 0xDEADBEEF;
            unsigned b = 0x12345678;
            return (int)((a ^ b) & 0xFF);
        }
    """,
}


@pytest.mark.parametrize("snippet", sorted(SNIPPETS))
def test_scheduled_result_matches_interpreter(core_machine, snippet):
    src = SNIPPETS[snippet]
    expected = Interpreter(compile_source(src)).run()
    compiled = compile_for_machine(compile_source(src), core_machine)
    result = run_compiled(compiled, check_connectivity=True, max_cycles=2_000_000)
    assert result.exit_code == expected


class TestTTAScheduleProperties:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_for_machine(
            compile_source(SNIPPETS["chain"]), build_machine("m-tta-2")
        )

    def test_at_most_one_move_per_bus(self, compiled):
        for instr in compiled.program.instrs:
            assert isinstance(instr, TTAInstr)
            buses = [m.bus for m in instr.moves]
            assert len(buses) == len(set(buses))

    def test_moves_respect_connectivity(self, compiled):
        machine = compiled.machine
        from repro.sim.tta_sim import TTASimulator

        sim = TTASimulator(compiled.program, check_connectivity=True)
        for instr in compiled.program.instrs:
            for move in instr.moves:
                bus = sim.buses[move.bus]
                src_ep = sim._endpoint_of_src(move)
                dst_ep = sim._endpoint_of_dst(move)
                if move.src[0] == "imm" and not isinstance(move.src[1], int):
                    continue
                assert bus.connects(src_ep, dst_ep), move

    def test_rf_ports_statically_respected(self, compiled):
        machine = compiled.machine
        limits_r = {rf.name: rf.read_ports for rf in machine.register_files}
        limits_w = {rf.name: rf.write_ports for rf in machine.register_files}
        for instr in compiled.program.instrs:
            reads: dict[str, int] = {}
            writes: dict[str, int] = {}
            for move in instr.moves:
                if move.src[0] == "rf":
                    reads[move.src[1]] = reads.get(move.src[1], 0) + 1
                if move.dst[0] == "rf":
                    writes[move.dst[1]] = writes.get(move.dst[1], 0) + 1
            for rf, n in reads.items():
                assert n <= limits_r[rf]
            for rf, n in writes.items():
                assert n <= limits_w[rf]

    def test_bypassing_happens(self, compiled):
        result = run_compiled(compiled)
        assert result.bypass_reads > 0, "dependence chain must use software bypassing"

    def test_dead_result_elimination_reduces_rf_writes(self, compiled):
        # The chain writes far fewer RF results than it triggers operations.
        result = run_compiled(compiled)
        assert result.rf_writes < result.triggers


class TestVLIWScheduleProperties:
    def test_issue_width_respected(self):
        compiled = compile_for_machine(
            compile_source(SNIPPETS["memory"]), build_machine("m-vliw-2")
        )
        for instr in compiled.program.instrs:
            assert len(instr.ops) <= 2

    def test_vliw3_uses_parallelism(self):
        compiled = compile_for_machine(
            compile_source(SNIPPETS["memory"]), build_machine("m-vliw-3")
        )
        widths = [len(instr.ops) for instr in compiled.program.instrs]
        assert max(widths) >= 2, "schedule should find some ILP"


class TestCycleShape:
    """The headline comparative effects the paper reports."""

    def test_tta_beats_vliw_on_dependence_chain(self):
        src = SNIPPETS["chain"]
        vliw = run_compiled(
            compile_for_machine(compile_source(src), build_machine("m-vliw-2"))
        )
        tta = run_compiled(
            compile_for_machine(compile_source(src), build_machine("m-tta-2"))
        )
        assert tta.exit_code == vliw.exit_code
        assert tta.cycles < vliw.cycles

    def test_mblaze5_beats_mblaze3(self):
        src = SNIPPETS["memory"]
        m3 = run_compiled(compile_for_machine(compile_source(src), build_machine("mblaze-3")))
        m5 = run_compiled(compile_for_machine(compile_source(src), build_machine("mblaze-5")))
        assert m5.cycles < m3.cycles

    def test_3_issue_not_slower_than_2_issue(self):
        src = SNIPPETS["memory"]
        w2 = run_compiled(compile_for_machine(compile_source(src), build_machine("m-vliw-2")))
        w3 = run_compiled(compile_for_machine(compile_source(src), build_machine("m-vliw-3")))
        assert w3.cycles <= w2.cycles * 1.05
