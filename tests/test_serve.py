"""The compile-and-simulate service.

Contracts pinned here:

* **byte-identity** -- a served ``/v1/run`` reports the same exit code,
  cycle count and every architectural stats counter as a direct
  ``run_compiled`` / ``run_batch`` of the same program, for every engine
  mode;
* **dedup** -- identical in-flight requests coalesce onto one pipeline
  execution (asserted via the ``/v1/stats`` counters), finished results
  are served from the artifact store, and the store contract is shared
  with ``repro sweep`` in both directions;
* **backpressure** -- a full queue answers 429 with ``Retry-After``
  without executing anything;
* **fault mapping** -- malformed requests, uncompilable programs,
  oversized bodies, per-job timeouts and cancellations each map to a
  distinct status code, and worker children never outlive their job;
* **graceful drain** -- shutdown lets queued and running jobs finish,
  terminates stragglers past the grace window, and leaves no orphaned
  worker processes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.backend import compile_for_machine
from repro.frontend import compile_source
from repro.machine import build_machine
from repro.pipeline import ArtifactStore, sweep
from repro.pipeline.executor import result_extras
from repro.serve import (
    SERVE_SCHEMA,
    BackgroundServer,
    Draining,
    JobManager,
    ServeError,
    encode_inputs,
    normalize_params,
)
from repro.sim import run_batch, run_compiled

#: ~1 ms in every mode; exit code 0 so the plain-run store path engages
TINY_SRC = "int main(void){ int i=0; int s=0; while(i<100){ s=s+i; i=i+1; } return 0; }"

#: ~2 s in fast mode on m-tta-2 -- long enough to observe in-flight
SLOW_SRC = "int main(void){ int i=0; int s=0; while(i<200000){ s=s+i; i=i+1; } return 0; }"

#: never terminates -- timeout/cancellation/straggler-drain fodder
SPIN_SRC = "int main(void){ int i=1; while(i){ } return 0; }"

#: control flow driven by memory, for batch per-lane input tests
BRANCH_SRC = """
int g[4] = {3, 10, 7, 2};
int main() {
  int acc = 0;
  int n = g[0];
  for (int i = 0; i < n; i = i + 1) { acc = acc + g[1] * i + i; }
  if (acc > g[2]) { return acc - g[3]; }
  return acc + g[3];
}
"""


def _word(value: int) -> bytes:
    return value.to_bytes(4, "little", signed=True)


def _distinct_src(tag: int) -> str:
    """A unique slow source per *tag* (defeats dedup where needed)."""
    return SLOW_SRC.replace("s=s+i;", f"s=s+i+{tag};")


def _wait_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = client.raw_request("GET", f"/v1/jobs/{job_id}")
        if payload.get("state") == state:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached state {state!r}")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One shared server + store for the read-mostly tests."""
    store = ArtifactStore(tmp_path_factory.mktemp("serve-store"))
    with BackgroundServer(store=store, jobs=2) as bg:
        yield bg


class TestHttpBasics:
    def test_healthz(self, served):
        with served.client() as c:
            payload = c.healthz()
        assert payload == {"schema_version": SERVE_SCHEMA, "status": "ok"}

    def test_unknown_route_404(self, served):
        with served.client() as c:
            status, payload, _ = c.raw_request("GET", "/v1/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"

    def test_wrong_method_405_with_allow(self, served):
        with served.client() as c:
            status, payload, headers = c.raw_request("GET", "/v1/run")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert payload["error"]["type"] == "MethodNotAllowed"

    def test_malformed_json_400(self, served):
        with served.client() as c:
            status, payload, _ = c.raw_request("POST", "/v1/run", b"{nope")
        assert status == 400
        assert "malformed JSON" in payload["error"]["message"]

    def test_post_without_length_411(self, served):
        # http.client always sends Content-Length, so speak raw bytes
        import socket

        with socket.create_connection((served.host, served.port)) as sock:
            sock.sendall(b"POST /v1/run HTTP/1.1\r\nHost: x\r\n\r\n")
            reply = sock.recv(4096).decode("latin-1")
        assert reply.startswith("HTTP/1.1 411 ")

    def test_chunked_encoding_rejected_411(self, served):
        import socket

        with socket.create_connection((served.host, served.port)) as sock:
            sock.sendall(
                b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            reply = sock.recv(4096).decode("latin-1")
        assert reply.startswith("HTTP/1.1 411 ")

    def test_garbage_request_line_400(self, served):
        import socket

        with socket.create_connection((served.host, served.port)) as sock:
            sock.sendall(b"BLURB\r\n\r\n")
            reply = sock.recv(4096).decode("latin-1")
        assert reply.startswith("HTTP/1.1 400 ")

    def test_schema_version_mismatch_400(self, served):
        with served.client() as c:
            with pytest.raises(ServeError) as err:
                c.run("m-tta-2", source=TINY_SRC, schema_version=99)
        assert err.value.status == 400
        assert "schema_version" in str(err.value)

    def test_request_id_echoed(self, served):
        with served.client() as c:
            status, _, headers = c.raw_request(
                "GET", "/healthz", headers={"X-Request-Id": "req-abc-123"}
            )
        assert status == 200
        assert headers["X-Request-Id"] == "req-abc-123"

    def test_oversized_body_413_then_connection_survives(self, tmp_path):
        with BackgroundServer(store=None, jobs=1, max_body=512) as bg:
            with bg.client() as c:
                big = json.dumps({"source": "x" * 2048}).encode()
                status, payload, headers = c.raw_request("POST", "/v1/run", big)
                assert status == 413
                assert payload["error"]["type"] == "HttpError"
                # the unread body desynchronises the stream: the server
                # must close, and the client reconnects transparently
                assert headers["Connection"] == "close"
                assert c.healthz()["status"] == "ok"


class TestRequestValidation:
    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({"machine": "no-such", "kernel": "mips"}, "unknown machine"),
            ({"machine": "m-tta-2", "kernel": "no-such"}, "unknown kernel"),
            ({"machine": "m-tta-2"}, "exactly one of"),
            ({"machine": "m-tta-2", "kernel": "mips", "source": "int"},
             "exactly one of"),
            ({"machine": "m-tta-2", "source": "   "}, "non-empty"),
            ({"machine": "m-tta-2", "kernel": "mips", "mode": "warp"},
             "unknown mode"),
            ({"machine": "m-tta-2", "kernel": "mips", "lanes": 2},
             "require mode 'batch'"),
            ({"machine": "m-tta-2", "kernel": "mips", "mode": "batch",
              "lanes": 0}, "'lanes'"),
            ({"machine": "m-tta-2", "kernel": "mips", "mode": "batch",
              "inputs": [[[0, "zz"]]]}, "bad hex"),
            ({"machine": "m-tta-2", "kernel": "mips", "max_cycles": 0},
             "max_cycles"),
            ({"machine": "m-tta-2", "kernel": "mips", "timeout_s": -1},
             "timeout_s"),
            ({"machine": "m-tta-2", "kernel": "mips", "wait": "yes"},
             "'wait'"),
        ],
    )
    def test_bad_run_request_400(self, served, body, fragment):
        with served.client() as c:
            with pytest.raises(ServeError) as err:
                c.request("POST", "/v1/run", body)
        assert err.value.status == 400
        assert fragment in str(err.value)

    def test_bad_sweep_subset_400(self, served):
        with served.client() as c:
            with pytest.raises(ServeError) as err:
                c.sweep(machines=["m-tta-2", "bogus"], kernels=["mips"])
        assert err.value.status == 400
        assert "unknown machine" in str(err.value)

    def test_compile_error_maps_to_400(self, served):
        with served.client() as c:
            with pytest.raises(ServeError) as err:
                c.run("m-tta-2", source="int main(void){ return undeclared; }")
        assert err.value.status == 400
        assert err.value.payload["error"]["type"] == "CompileError"


class TestByteIdentity:
    """Served results must equal direct pipeline results, field for field."""

    @pytest.mark.parametrize("mode", ["checked", "fast", "turbo", "native", "batch"])
    def test_run_matches_run_compiled(self, served, mode):
        compiled = compile_for_machine(
            compile_source(TINY_SRC), build_machine("m-tta-2")
        )
        want = run_compiled(compiled, mode=mode)
        with served.client() as c:
            got = c.run("m-tta-2", source=TINY_SRC, mode=mode)
        result = got["result"]
        assert result["exit_code"] == want.exit_code
        assert result["cycles"] == want.cycles
        assert result["stats"] == result_extras(want)
        assert result["instruction_count"] == compiled.instruction_count
        assert result["mode"] == mode

    def test_kernel_run_matches_direct(self, served):
        from repro.kernels import kernel_source

        compiled = compile_for_machine(
            compile_source(kernel_source("mips"), module_name="mips"),
            build_machine("m-tta-2"),
        )
        want = run_compiled(compiled, mode="fast")
        with served.client() as c:
            got = c.run("m-tta-2", kernel="mips", mode="fast")
        assert got["result"]["exit_code"] == 0
        assert got["result"]["cycles"] == want.cycles
        assert got["result"]["stats"] == result_extras(want)

    def test_batch_inputs_match_run_batch(self, served):
        compiled = compile_for_machine(
            compile_source(BRANCH_SRC), build_machine("m-tta-2")
        )
        g = compiled.symbols["g"]
        lanes = [
            ((g, _word(3)),),
            ((g, _word(1)),),
            ((g + 4, _word(100)),),
            ((g, _word(0)),),
        ]
        want = run_batch(compiled, inputs=lanes)
        with served.client() as c:
            got = c.run(
                "m-tta-2", source=BRANCH_SRC, mode="batch",
                inputs=encode_inputs(lanes),
            )
        assert len(got["results"]) == len(lanes)
        for lane, ref in zip(got["results"], want):
            assert lane["exit_code"] == ref.exit_code
            assert lane["cycles"] == ref.cycles
            assert lane["stats"] == result_extras(ref)
        # the summary row is lane 0
        assert got["result"]["cycles"] == want[0].cycles

    def test_scalar_machine_served(self, served):
        compiled = compile_for_machine(
            compile_source(TINY_SRC), build_machine("mblaze-3")
        )
        want = run_compiled(compiled, mode="fast")
        with served.client() as c:
            got = c.run("mblaze-3", source=TINY_SRC, mode="fast")
        assert got["result"]["cycles"] == want.cycles
        assert got["result"]["stats"] == result_extras(want)


class TestDedupAndCache:
    def test_second_identical_request_is_store_hit(self, served):
        # a source no other test submits, so the first request computes
        src = TINY_SRC.replace("i<100", "i<101")
        with served.client() as c:
            before = c.stats()["dedup"]
            first = c.run("m-tta-2", source=src, mode="turbo")
            second = c.run("m-tta-2", source=src, mode="turbo")
            after = c.stats()["dedup"]
        assert first["result"] == second["result"]
        assert second["cached"] is True
        assert after["cache_hits"] >= before["cache_hits"] + 1
        assert after["executed"] == before["executed"] + 1

    def test_sweep_cache_answers_served_run(self, tmp_path):
        """The plain-run key contract is shared with ``repro sweep``:
        a sweep-warmed store answers ``/v1/run`` without executing."""
        store = ArtifactStore(tmp_path)
        outcome = sweep(
            machines=["m-tta-2"], kernels=["mips"], mode="fast", store=store
        )
        want = outcome.results[("m-tta-2", "mips")]
        with BackgroundServer(store=store, jobs=1) as bg:
            with bg.client() as c:
                got = c.run("m-tta-2", kernel="mips", mode="fast")
                stats = c.stats()
        assert got["cached"] is True
        assert stats["dedup"]["executed"] == 0
        assert got["result"]["cycles"] == want.cycles
        assert got["result"]["stats"] == {
            k: v for k, v in want.extras.items() if not k.startswith("_")
        }

    def test_served_run_warms_sweep_cache(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with BackgroundServer(store=store, jobs=1) as bg:
            with bg.client() as c:
                got = c.run("m-tta-2", kernel="mips", mode="fast")
        assert got["cached"] is False
        outcome = sweep(
            machines=["m-tta-2"], kernels=["mips"], mode="fast", store=store
        )
        assert outcome.stats.cache_hits == 1
        assert outcome.stats.computed == 0
        result = outcome.results[("m-tta-2", "mips")]
        assert result.cycles == got["result"]["cycles"]

    def test_concurrent_identical_requests_execute_once(self, tmp_path):
        """The acceptance contract: N identical in-flight requests run
        exactly one pipeline execution."""
        store = ArtifactStore(tmp_path)
        with BackgroundServer(store=store, jobs=2) as bg:
            with bg.client() as c:
                body = {"machine": "m-tta-2", "source": SLOW_SRC,
                        "mode": "fast", "wait": False}
                first = c.request("POST", "/v1/run", body)
                second = c.request("POST", "/v1/run", body)
                third = c.request("POST", "/v1/run", body)
                assert first["job_id"] == second["job_id"] == third["job_id"]
                done = c.wait_job(first["job_id"])
                stats = c.stats()
        assert done["state"] == "done"
        assert done["coalesced_requests"] == 2
        assert len(done["request_ids"]) == 3
        assert stats["dedup"]["executed"] == 1
        assert stats["dedup"]["coalesced"] == 2


class TestBackpressure:
    def test_queue_full_429_without_executing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with BackgroundServer(store=store, jobs=1, queue_limit=1) as bg:
            with bg.client() as c:
                a = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": _distinct_src(1),
                    "wait": False,
                })
                _wait_state(c, a["job_id"], "running")
                b = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": _distinct_src(2),
                    "wait": False,
                })
                assert b["state"] == "queued"
                with pytest.raises(ServeError) as err:
                    c.request("POST", "/v1/run", {
                        "machine": "m-tta-2", "source": _distinct_src(3),
                        "wait": False,
                    })
                assert err.value.status == 429
                assert err.value.payload["error"]["type"] == "QueueFull"
                assert err.value.headers["Retry-After"] == "1"
                stats = c.stats()
                assert stats["queue"]["depth"] == 1
                assert stats["queue"]["limit"] == 1
                c.wait_job(a["job_id"])
                c.wait_job(b["job_id"])
                final = c.stats()["dedup"]
        # the rejected request never executed
        assert final["executed"] == 2


class TestTimeoutAndCancellation:
    def test_job_timeout_504_and_no_orphans(self, tmp_path):
        with BackgroundServer(store=None, jobs=1, job_timeout=1.0) as bg:
            with bg.client() as c:
                with pytest.raises(ServeError) as err:
                    c.run("m-tta-2", source=SPIN_SRC)
            assert err.value.status == 504
            assert err.value.payload["error"]["type"] == "JobTimeout"
            assert bg.server.manager.active_process_count() == 0

    def test_per_request_timeout_hint(self, tmp_path):
        started = time.monotonic()
        with BackgroundServer(store=None, jobs=1) as bg:
            with bg.client() as c:
                with pytest.raises(ServeError) as err:
                    c.run("m-tta-2", source=SPIN_SRC, timeout_s=0.5)
            assert err.value.status == 504
        # nowhere near the 300 s server default
        assert time.monotonic() - started < 60

    def test_cancel_running_job_409_and_no_orphans(self, tmp_path):
        with BackgroundServer(store=None, jobs=1) as bg:
            with bg.client() as c:
                job = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": SPIN_SRC, "wait": False,
                })
                _wait_state(c, job["job_id"], "running")
                cancel = c.cancel(job["job_id"])
                assert cancel["cancel_requested"] is True
                with pytest.raises(ServeError) as err:
                    c.wait_job(job["job_id"])
                assert err.value.status == 409
                assert err.value.payload["state"] == "cancelled"
            assert bg.server.manager.active_process_count() == 0

    def test_cancel_queued_job_never_starts(self, tmp_path):
        with BackgroundServer(store=None, jobs=1, queue_limit=4) as bg:
            with bg.client() as c:
                a = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": _distinct_src(4),
                    "wait": False,
                })
                _wait_state(c, a["job_id"], "running")
                b = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": _distinct_src(5),
                    "wait": False,
                })
                cancelled = c.cancel(b["job_id"])
                assert cancelled["state"] == "cancelled"
                c.wait_job(a["job_id"])
                stats = c.stats()
        assert stats["dedup"]["executed"] == 1  # b never ran
        assert stats["jobs"]["cancelled"] == 1

    def test_unknown_job_404(self, served):
        with served.client() as c:
            status, payload, _ = c.raw_request("GET", "/v1/jobs/j999999")
            assert status == 404
            status, _, _ = c.raw_request("DELETE", "/v1/jobs/j999999")
            assert status == 404


class TestGracefulDrain:
    def test_drain_completes_in_flight_jobs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        bg = BackgroundServer(store=store, jobs=1).start()
        try:
            with bg.client() as c:
                job = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": SLOW_SRC, "wait": False,
                })
                _wait_state(c, job["job_id"], "running")
        finally:
            summary = bg.stop()
        assert summary == {"completed": 1, "terminated": 0}
        finished = bg.server.manager.get(job["job_id"])
        assert finished.state == "done"
        assert finished.result["result"]["exit_code"] == 0
        assert bg.server.manager.active_process_count() == 0

    def test_drain_terminates_stragglers_past_grace(self, tmp_path):
        bg = BackgroundServer(store=None, jobs=1, drain_grace=0.3).start()
        try:
            with bg.client() as c:
                job = c.request("POST", "/v1/run", {
                    "machine": "m-tta-2", "source": SPIN_SRC, "wait": False,
                })
                _wait_state(c, job["job_id"], "running")
        finally:
            summary = bg.stop()
        assert summary["terminated"] >= 1
        assert bg.server.manager.get(job["job_id"]).state == "cancelled"
        assert bg.server.manager.active_process_count() == 0

    def test_draining_manager_rejects_new_jobs(self):
        async def scenario():
            manager = JobManager(shards=1, queue_limit=4, job_timeout=30)
            await manager.start()
            await manager.drain(timeout=5)
            params = normalize_params(
                "run", {"machine": "m-tta-2", "source": TINY_SRC}
            )
            with pytest.raises(Draining):
                manager.submit("run", params, "r1")

        asyncio.run(scenario())


class TestObservability:
    def test_trace_payload_carries_request_id(self, served):
        with served.client() as c:
            got = c.request(
                "POST", "/v1/run",
                {"machine": "m-tta-2", "source": TINY_SRC, "mode": "fast",
                 "trace": True},
                request_id="trace-me-42",
            )
        trace = got["trace"]
        assert trace["request_id"] == "trace-me-42"
        assert trace["process"] == "serve-run"
        names = {rec["name"] for rec in trace["spans"]}
        assert "serve.job.run" in names
        # and the payload merges into a Chrome trace with the id attached
        from repro.obs import to_chrome_trace

        doc = to_chrome_trace([trace])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["request_id"] == "trace-me-42"

    def test_stats_shape(self, served):
        with served.client() as c:
            c.healthz()
            stats = c.stats()
        assert stats["schema_version"] == SERVE_SCHEMA
        assert stats["queue"]["shards"] == 2
        assert stats["store"]["root"]
        endpoint = stats["endpoints"]["GET /healthz"]
        assert endpoint["count"] >= 1
        latency = endpoint["latency_ms"]
        for field in ("count", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
                      "max_ms"):
            assert field in latency
        assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]
        assert "execution_ms" in stats["jobs"]


class TestSweepEndpoint:
    def test_sweep_async_by_default_and_matches_direct(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with BackgroundServer(store=store, jobs=1) as bg:
            with bg.client() as c:
                submitted = c.sweep(machines=["m-tta-2"], kernels=["mips"])
                assert submitted["state"] in ("queued", "running")
                done = c.wait_job(submitted["job_id"])
        served_doc = done["result"]
        assert served_doc["schema_version"] == 1
        # the same store now answers a direct sweep from cache with
        # identical per-pair numbers
        direct = sweep(
            machines=["m-tta-2"], kernels=["mips"], mode="fast", store=store
        )
        assert direct.stats.cache_hits == 1
        assert served_doc["results"] == direct.to_dict()["results"]

    def test_sweep_wait_true_returns_results(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with BackgroundServer(store=store, jobs=1) as bg:
            with bg.client() as c:
                done = c.sweep(
                    machines=["m-tta-2"], kernels=["mips"], wait=True
                )
        assert done["state"] == "done"
        assert done["result"]["stats"]["total"] == 1
        assert not done["result"]["errors"]


class TestServeCLI:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--jobs", "0"],
            ["serve", "--queue-limit", "0"],
            ["serve", "--job-timeout", "0"],
            ["serve", "--port", "70000"],
        ],
    )
    def test_bad_arguments_exit_2(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err

    def test_sigterm_drains_gracefully(self, tmp_path):
        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "store")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "1"],
            cwd=repo, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stderr.readline()
            assert "serving on http://" in line, line
            port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
            from repro.serve import ServeClient

            with ServeClient("127.0.0.1", port) as c:
                assert c.healthz()["status"] == "ok"
                got = c.run("m-tta-2", source=TINY_SRC, mode="fast")
                assert got["result"]["exit_code"] == 0
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0
        assert "draining..." in stderr
        assert "drained:" in stderr
