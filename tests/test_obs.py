"""Observability layer tests: tracer mechanics, exporters, stack
instrumentation, pipeline aggregation and the CLI trace surface.

The two structural properties the layer guarantees:

* **disabled = no-op**: with no tracer installed, ``obs.span`` returns
  the shared ``NOOP_SPAN`` singleton and counters/gauges return
  immediately (the <2% throughput bound is asserted by
  ``benchmarks/bench_sim_throughput.py``);
* **enabled = byte-identical**: every architectural statistic is
  identical with tracing on, off, and across engines — the counters are
  derived from statistics the engines already compute, after the run.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro import build_machine, compile_for_machine, compile_source, obs
from repro.cli import main
from repro.sim import run_compiled
from repro.sim.counters import STAT_FIELDS, record_run

SRC = """
int main(void){
    int i; int s = 0;
    for (i = 0; i < 8; i++) s += i * 3;
    return s - 84;
}
"""


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


# ---------------------------------------------------------------------------
# tracer mechanics
# ---------------------------------------------------------------------------


class TestTracerCore:
    def test_disabled_fast_path_is_the_noop_singleton(self):
        assert not obs.enabled()
        assert obs.current() is None
        # identity, not equality: the disabled path allocates nothing
        assert obs.span("anything", key="value") is obs.NOOP_SPAN
        assert obs.span("other") is obs.NOOP_SPAN
        obs.count("nope", 5)  # no-ops, no error
        obs.gauge("nope", 1.0)
        with obs.span("still.noop"):
            pass

    def test_enable_disable_lifecycle(self):
        tracer = obs.enable()
        assert obs.enabled() and obs.current() is tracer
        with pytest.raises(RuntimeError, match="already enabled"):
            obs.enable()
        assert obs.disable() is tracer
        assert not obs.enabled()
        assert obs.disable() is None  # idempotent

    def test_tracing_context_manager(self):
        with obs.tracing() as tracer:
            obs.count("x")
            assert obs.current() is tracer
        assert not obs.enabled()
        assert tracer.counters == {"x": 1}

    def test_span_nesting_records_depth_and_completion_order(self):
        with obs.tracing() as tracer:
            with obs.span("outer", phase="a"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        names = [(s["name"], s["depth"]) for s in tracer.spans]
        # children complete before the parent
        assert names == [("inner", 1), ("inner", 1), ("outer", 0)]
        outer = tracer.spans[-1]
        assert outer["args"] == {"phase": "a"}
        for rec in tracer.spans:
            assert rec["dur"] >= 0.0 and rec["ts"] >= 0.0

    def test_span_depth_restored_on_exception(self):
        with obs.tracing() as tracer:
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("boom")
            with obs.span("after"):
                pass
        assert [s["depth"] for s in tracer.spans] == [0, 0]

    def test_counters_accumulate_gauges_overwrite(self):
        with obs.tracing() as tracer:
            obs.count("c")
            obs.count("c", 4)
            obs.gauge("g", 1.5)
            obs.gauge("g", 2.5)
        assert tracer.counters == {"c": 5}
        assert tracer.gauges == {"g": 2.5}

    def test_payload_roundtrip_is_json_safe(self):
        with obs.tracing(obs.Tracer(process="unit")) as tracer:
            with obs.span("s", k=1):
                obs.count("n", 2)
        payload = tracer.to_payload()
        assert obs.Tracer.validate_payload(payload) is payload
        rt = json.loads(json.dumps(payload))
        assert rt == payload
        assert rt["process"] == "unit"
        assert rt["schema"] == obs.PAYLOAD_SCHEMA

    def test_validate_payload_rejects_malformed(self):
        with pytest.raises(ValueError, match="must be a dict"):
            obs.Tracer.validate_payload([])
        with pytest.raises(ValueError, match="schema mismatch"):
            obs.Tracer.validate_payload({"schema": -1})
        bad = obs.Tracer().to_payload()
        bad["spans"] = "nope"
        with pytest.raises(ValueError, match="spans"):
            obs.Tracer.validate_payload(bad)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _payload(process: str, counters=None, gauges=None, origin=0.0):
    tracer = obs.Tracer(process=process)
    tracer._origin_epoch_us = origin
    for name, value in (counters or {}).items():
        tracer.count(name, value)
    for name, value in (gauges or {}).items():
        tracer.gauge(name, value)
    with tracer.span("work"):
        pass
    return tracer.to_payload()


class TestExport:
    def test_merge_sums_counters_last_wins_gauges(self):
        merged = obs.merge_payloads(
            [
                _payload("a", {"x": 1, "y": 2}, {"g": 1.0}),
                _payload("b", {"x": 10}, {"g": 9.0, "h": 3.0}),
            ]
        )
        assert merged["counters"] == {"x": 11, "y": 2}
        assert merged["gauges"] == {"g": 9.0, "h": 3.0}
        assert [p["process"] for p in merged["payloads"]] == ["a", "b"]

    def test_chrome_trace_structure(self):
        p1 = _payload("w1", origin=100.0)
        p2 = _payload("w2", origin=250.5)
        doc = obs.to_chrome_trace([p1, p2])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"w1", "w2"}
        assert {e["pid"] for e in spans} == {1, 2}
        # alignment: the earliest origin is the zero point, and every
        # payload's spans are shifted by exactly its origin delta
        w1 = next(e for e in spans if e["pid"] == 1)
        w2 = next(e for e in spans if e["pid"] == 2)
        assert w1["ts"] == pytest.approx(p1["spans"][0]["ts"] + 0.0, abs=0.1)
        assert w2["ts"] == pytest.approx(p2["spans"][0]["ts"] + 150.5, abs=0.1)
        assert doc["repro"]["schema"] == obs.TRACE_DOC_SCHEMA

    def test_write_load_roundtrip(self, tmp_path):
        doc = obs.to_chrome_trace([_payload("p")])
        path = obs.write_trace(tmp_path / "t.json", doc)
        assert obs.load_trace(path) == doc

    def test_write_trace_propagates_oserror(self, tmp_path):
        doc = obs.to_chrome_trace([_payload("p")])
        with pytest.raises(OSError):
            obs.write_trace(tmp_path / "missing-dir" / "t.json", doc)

    def test_load_trace_rejects_garbage(self, tmp_path):
        with pytest.raises(OSError):
            obs.load_trace(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(ValueError, match="not JSON"):
            obs.load_trace(bad)
        bad.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="traceEvents"):
            obs.load_trace(bad)
        bad.write_text('{"traceEvents": [], "repro": {"schema": -5}}')
        with pytest.raises(ValueError, match="side table"):
            obs.load_trace(bad)

    def test_summarize_and_format(self):
        doc = obs.to_chrome_trace(
            [_payload("a", {"n": 2}), _payload("b", {"n": 3})]
        )
        summary = obs.summarize(doc)
        row = next(r for r in summary["spans"] if r["name"] == "work")
        assert row["count"] == 2
        assert row["total_us"] >= row["max_us"] >= row["mean_us"] >= 0
        assert summary["counters"] == {"n": 5}
        text = obs.format_summary(summary)
        assert "work" in text and "2 process(es)" in text and "n" in text


# ---------------------------------------------------------------------------
# stack instrumentation
# ---------------------------------------------------------------------------


class TestStackInstrumentation:
    @pytest.mark.parametrize("machine_name", ("m-tta-2", "m-vliw-2", "mblaze-3"))
    def test_compile_and_run_emit_expected_spans(self, machine_name):
        machine = build_machine(machine_name)
        with obs.tracing() as tracer:
            compiled = compile_for_machine(compile_source(SRC), machine)
            result = run_compiled(compiled)
        assert result.exit_code == 0
        names = {s["name"] for s in tracer.spans}
        assert {"frontend.parse", "frontend.sema", "frontend.irgen",
                "ir.optimize", "backend.lower", "backend.regalloc",
                "backend.link", "sim.run"} <= names
        assert any(n.startswith("ir.pass.") for n in names)
        if machine_name == "m-tta-2":
            assert "backend.schedule_tta" in names
        elif machine_name == "m-vliw-2":
            assert "backend.schedule_vliw" in names
        # scheduler + simulator counters are populated and plausible
        counters = tracer.counters
        assert counters["sched.instrs"] > 0
        assert counters["sim.runs"] == 1
        assert counters["sim.cycles"] == result.cycles
        if machine_name == "m-tta-2":
            assert counters["sched.moves"] > 0
            assert counters["sim.moves"] == result.moves
            assert counters["sim.bypass_reads"] == result.bypass_reads
        assert counters["regalloc.intervals"] > 0

    def test_stats_byte_identical_traced_vs_untraced(self):
        """The determinism guarantee: tracing perturbs nothing."""
        for machine_name in ("m-tta-2", "m-vliw-2", "mblaze-3"):
            machine = build_machine(machine_name)
            compiled = compile_for_machine(compile_source(SRC), machine)
            untraced = asdict(run_compiled(compiled))
            with obs.tracing():
                traced = asdict(run_compiled(compiled))
            assert traced == untraced, machine_name

    def test_stats_byte_identical_across_engines_while_traced(self):
        machine = build_machine("m-tta-2")
        compiled = compile_for_machine(compile_source(SRC), machine)
        reference = asdict(run_compiled(compiled, mode="checked"))
        with obs.tracing():
            for mode in ("fast", "turbo"):
                assert asdict(run_compiled(compiled, mode=mode)) == reference

    def test_turbo_and_predecode_cache_counters(self):
        machine = build_machine("m-tta-2")
        compiled = compile_for_machine(compile_source(SRC), machine)
        with obs.tracing() as cold:
            run_compiled(compiled, mode="turbo")
        assert cold.counters["sim.turbo.blocks_compiled"] > 0
        with obs.tracing() as warm:
            run_compiled(compiled, mode="turbo")
        assert warm.counters.get("sim.turbo.blocks_compiled", 0) == 0
        assert warm.counters["sim.turbo.block_cache_hits"] > 0
        assert warm.counters["sim.predecode.cache_hits"] >= 1

    def test_record_run_folds_only_present_fields(self):
        class FakeResult:
            cycles = 10
            moves = 4
            bundles = None

        record_run(FakeResult(), "tta")  # disabled: no-op, no error
        with obs.tracing() as tracer:
            record_run(FakeResult(), "tta")
        assert tracer.counters == {
            "sim.runs": 1,
            "sim.runs.tta": 1,
            "sim.cycles": 10,
            "sim.moves": 4,
        }
        assert set(STAT_FIELDS) >= {"moves", "bundles", "instructions"}


# ---------------------------------------------------------------------------
# pipeline aggregation + EvalResult extras
# ---------------------------------------------------------------------------


class TestPipelineAggregation:
    @pytest.fixture(scope="class")
    def traced_outcome(self):
        from repro.pipeline import sweep

        return sweep(
            machines=("m-tta-1",),
            kernels=("tiny",),
            sources={"tiny": SRC},
            use_cache=False,
            trace=True,
        )

    def test_sweep_collects_worker_payloads(self, traced_outcome):
        assert len(traced_outcome.traces) == 1
        payload = obs.Tracer.validate_payload(traced_outcome.traces[0])
        names = {s["name"] for s in payload["spans"]}
        assert "task.execute" in names and "sim.run" in names
        assert payload["counters"]["sched.instrs"] > 0

    def test_serial_traced_sweep_leaves_no_tracer_behind(self, traced_outcome):
        # the in-process worker parks/restores the ambient tracer
        assert not obs.enabled()

    def test_extras_populated_and_whitelisted(self, traced_outcome):
        result = traced_outcome.results[("m-tta-1", "tiny")]
        assert result.extras  # TTA: transport + RF traffic counters
        assert set(result.extras) <= set(STAT_FIELDS)
        assert result.extras["moves"] > 0
        assert result.extras["rf_writes"] > 0

    def test_extras_survive_the_result_schema_roundtrip(self, traced_outcome):
        from repro.pipeline.types import EvalResult

        result = traced_outcome.results[("m-tta-1", "tiny")]
        assert EvalResult.from_dict(result.to_dict()) == result

    def test_parallel_traced_sweep_ships_per_process_payloads(self):
        from repro.pipeline import sweep

        outcome = sweep(
            machines=("m-tta-1",),
            kernels=("a", "b"),
            sources={"a": SRC, "b": SRC},
            use_cache=False,
            jobs=2,
            trace=True,
        )
        assert outcome.ok and len(outcome.traces) == 2
        doc = obs.to_chrome_trace(outcome.traces)
        processes = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert len(processes) == 2  # one per worker, named by pid + pair

    def test_failing_task_still_ships_its_payload(self):
        from repro.pipeline import TaskError, run_tasks, build_tasks, TracedOutcome

        tasks = build_tasks(
            machines=("m-tta-1",), sources={"bad": "int main( {"}
        )
        [traced] = run_tasks(tasks, retries=0, trace=True)
        assert isinstance(traced, TracedOutcome)
        assert isinstance(traced.outcome, TaskError)
        payload = obs.Tracer.validate_payload(traced.trace)
        assert any(s["name"] == "task.execute" for s in payload["spans"])

    def test_untraced_sweep_collects_nothing(self):
        from repro.pipeline import sweep

        outcome = sweep(
            machines=("m-tta-1",),
            kernels=("tiny",),
            sources={"tiny": SRC},
            use_cache=False,
        )
        assert outcome.ok and outcome.traces == []

    def test_traffic_table_surfaces_extras(self):
        from repro.eval import traffic_table
        from repro.eval.runner import sweep_cache_clear

        sweep_cache_clear()
        rows = traffic_table(kernels=("mips",), machines=("m-tta-1", "mblaze-3"))
        by_machine = {r["machine"]: r for r in rows}
        tta = by_machine["m-tta-1"]
        assert tta["moves"] > 0 and tta["rf_writes"] > 0
        assert tta["bypass_pct"] != ""
        scalar = by_machine["mblaze-3"]
        assert scalar["instructions"] > 0
        assert scalar["moves"] == ""  # no transport network


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLITrace:
    @pytest.fixture()
    def minic_file(self, tmp_path):
        path = tmp_path / "prog.mc"
        path.write_text(SRC)
        return str(path)

    def test_run_trace_writes_a_loadable_document(self, minic_file, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["run", minic_file, "-m", "m-tta-1", "--trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err
        doc = obs.load_trace(out)
        summary = obs.summarize(doc)
        assert any(r["name"] == "sim.run" for r in summary["spans"])
        assert summary["counters"]["sim.cycles"] > 0

    def test_run_trace_unwritable_path_exits_2(self, minic_file, tmp_path, capsys):
        dest = tmp_path / "no-such-dir" / "t.json"
        assert main(["run", minic_file, "-m", "m-tta-1", "--trace", str(dest)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot write trace" in err
        assert "Traceback" not in err

    def test_run_trace_compile_error_writes_nothing(self, tmp_path, capsys):
        bad = tmp_path / "bad.mc"
        bad.write_text("int main( {")
        out = tmp_path / "t.json"
        assert main(["run", str(bad), "--trace", str(out)]) == 2
        assert not out.exists()
        assert not obs.enabled()  # tracer released on the error path

    def test_sweep_trace_merges_driver_and_workers(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips,motion",
             "--no-cache", "-q", "--trace", str(out)]
        )
        assert code == 0
        doc = obs.load_trace(out)
        processes = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert "sweep driver" in processes
        assert len(processes) == 3  # driver + one payload per pair
        assert doc["repro"]["counters"]["sim.runs"] == 2
        assert doc["repro"]["counters"]["sched.moves"] > 0

    def test_sweep_trace_implies_refresh(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
                "--cache-dir", str(cache), "-q"]
        assert main(args) == 0  # warm the cache
        out = tmp_path / "warm.json"
        assert main([*args, "--trace", str(out)]) == 0
        # a warm cache would have produced zero worker payloads without
        # the implied refresh
        doc = obs.load_trace(out)
        assert len(doc["repro"]["payloads"]) == 2  # driver + 1 worker
        assert "computed" in capsys.readouterr().err

    def test_sweep_trace_unwritable_path_exits_2(self, tmp_path, capsys):
        dest = tmp_path / "no-such-dir" / "t.json"
        code = main(
            ["sweep", "--machines", "m-tta-1", "--kernels", "mips",
             "--no-cache", "-q", "--trace", str(dest)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error: cannot write trace" in err
        assert "Traceback" not in err
        assert not obs.enabled()

    def test_trace_summary_renders(self, minic_file, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["run", minic_file, "-m", "m-tta-1", "--trace", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(out)]) == 0
        text = capsys.readouterr().out
        assert "top spans" in text and "counters:" in text

    def test_trace_summary_json(self, minic_file, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["run", minic_file, "-m", "m-tta-1", "--trace", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(out), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["processes"] and summary["spans"]

    def test_trace_summary_errors_exit_2(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "absent.json")]) == 2
        assert "error: cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text('{"oops": true}')
        assert main(["trace", "summary", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err
