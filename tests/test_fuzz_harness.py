"""Campaign orchestration end-to-end, including the headline acceptance
property: an injected semantics bug is *caught*, *minimized* to a small
reproducer, and *persisted* to the corpus."""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzConfig, load_corpus, run_fuzz
from repro.pipeline import ArtifactStore


def _config(**kw) -> FuzzConfig:
    base = dict(
        seed=0,
        count=3,
        machines=["m-tta-1", "mblaze-3"],
        modes=["checked", "fast"],
        jobs=1,
        use_cache=False,
        minimize=False,
    )
    base.update(kw)
    return FuzzConfig(**base)


@pytest.mark.slow  # two full differential campaigns
def test_small_campaign_is_clean_and_deterministic():
    a = run_fuzz(_config())
    b = run_fuzz(_config())
    assert a.ok and b.ok
    assert a.generated == b.generated == 3
    assert a.cases_total == b.cases_total == 6
    assert a.cases_ok == 6
    da, db = a.to_dict(), b.to_dict()
    da.pop("elapsed_s"), db.pop("elapsed_s")
    assert da == db


def test_zero_count_campaign():
    report = run_fuzz(_config(count=0))
    assert report.ok
    assert report.generated == 0
    assert report.cases_total == 0


def test_invalid_subsets_raise():
    with pytest.raises(ValueError):
        run_fuzz(_config(machines=["no-such-machine"]))
    with pytest.raises(ValueError):
        run_fuzz(_config(modes=["warp"]))
    with pytest.raises(ValueError):
        run_fuzz(_config(count=-1))


def test_exhausted_time_budget_short_circuits():
    report = run_fuzz(_config(count=50, time_budget=1e-9))
    assert report.budget_exhausted
    assert report.generated == 0
    assert report.ok  # nothing ran, nothing diverged


def test_passing_verdicts_are_served_from_the_store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    cold = run_fuzz(_config(store=store, use_cache=True))
    assert cold.ok and cold.cases_cached == 0
    warm = run_fuzz(_config(store=store, use_cache=True))
    assert warm.ok
    assert warm.cases_cached == warm.cases_total == cold.cases_total


def test_progress_callback_sees_every_case():
    seen = []
    report = run_fuzz(
        _config(progress=lambda done, total, case, outcome: seen.append(
            (done, total, case.machine, case.kernel)
        ))
    )
    assert report.ok
    assert len(seen) == report.cases_total
    assert [s[0] for s in seen] == list(range(1, report.cases_total + 1))
    assert all(s[1] == report.cases_total for s in seen)


@pytest.mark.slow  # campaign + delta-debugging minimization
def test_injected_bug_is_caught_minimized_and_persisted(tmp_path, monkeypatch):
    """The subsystem's reason to exist, as one assertion chain: break the
    checked TTA engine's ``xor``, fuzz, and demand a small reproducer.

    ``xor`` is a pure data operation (never addresses or loop control),
    so the broken engine still terminates promptly -- the divergence is
    a wrong result, the hardest kind to spot without an oracle.  Every
    generated kernel folds its state through an FNV xor/multiply
    checksum, so the bug is guaranteed to fire."""
    import repro.isa.semantics as semantics
    import repro.sim.tta_sim as tta_sim

    real = semantics.evaluate

    def buggy(op, operands):
        if op == "xor":
            return (operands[0] ^ operands[1] ^ 1) & 0xFFFFFFFF
        return real(op, operands)

    monkeypatch.setattr(tta_sim, "evaluate", buggy)

    corpus_dir = tmp_path / "corpus"
    report = run_fuzz(
        _config(
            count=2,
            machines=["m-tta-1"],
            modes=["checked", "fast"],
            minimize=True,
            max_minimized=1,
            minimize_checks=150,
            corpus_dir=corpus_dir,
        )
    )
    assert not report.ok
    assert report.cases_diverged > 0
    assert all(d.machine == "m-tta-1" for d in report.divergences)

    assert report.reproducers, "diverging kernels must be minimized"
    for repro_entry in report.reproducers:
        assert repro_entry.lines < 30, repro_entry.source
        assert "main" in repro_entry.source

    entries = load_corpus(corpus_dir)
    assert {e.name for e in entries} == {r.entry for r in report.reproducers}
    for entry in entries:
        assert entry.machine == "m-tta-1"
        assert entry.meta["generator_version"] >= 1
        assert entry.mode in ("checked", "fast", "compile")
