"""Lexer unit tests."""

from __future__ import annotations

import pytest

from repro.frontend import CompileError, TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestTokens:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while_2 return")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[2].kind is TokenKind.IDENT  # while_2 is an ident
        assert tokens[3].kind is TokenKind.KEYWORD

    def test_decimal_number(self):
        assert tokenize("1234")[0].value == 1234

    def test_hex_number(self):
        assert tokenize("0xFF")[0].value == 255
        assert tokenize("0xDEADBEEF")[0].value == 0xDEADBEEF

    def test_suffixes_swallowed(self):
        assert tokenize("1u")[0].value == 1
        assert tokenize("0xFFFFFFFFu")[0].value == 0xFFFFFFFF
        assert tokenize("10UL")[0].value == 10

    def test_char_literal(self):
        assert tokenize("'a'")[0].value == 97
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\x41'")[0].value == 0x41

    def test_string_literal(self):
        assert tokenize('"hi"')[0].value == b"hi"
        assert tokenize(r'"a\tb"')[0].value == b"a\tb"

    def test_operators_maximal_munch(self):
        assert texts("a <<= b >> c") == ["a", "<<=", "b", ">>", "c"]
        assert texts("x+++y") == ["x", "++", "+", "y"]
        assert texts("a&&b&c") == ["a", "&&", "b", "&", "c"]

    def test_comments_stripped(self):
        assert texts("a /* b */ c // d\n e") == ["a", "c", "e"]

    def test_line_col_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")

    def test_unknown_char(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")

    def test_bad_escape(self):
        with pytest.raises(CompileError):
            tokenize(r"'\q'")
