"""The delta-debugging minimizer: shrinks hard, preserves the failure,
never lies about the result."""

from __future__ import annotations

from repro.fuzz import generate_kernel, minimize_kernel, render_kernel
from repro.fuzz.gen import Lit
from repro.fuzz.minimize import _ddmin_list


def test_ddmin_removes_everything_removable():
    # predicate: candidate must keep 3 and 7
    items = list(range(10))
    kept = _ddmin_list(items, lambda c: 3 in c and 7 in c)
    assert kept == [3, 7]


def test_ddmin_empty_ok():
    assert _ddmin_list([], lambda c: True) == []


def test_minimizer_returns_input_when_predicate_never_holds():
    kernel = generate_kernel(0, 1)
    out = minimize_kernel(kernel.ast, lambda source: False)
    assert render_kernel(out) == render_kernel(kernel.ast)


def test_minimizer_does_not_mutate_its_input():
    kernel = generate_kernel(0, 2)
    before = render_kernel(kernel.ast)
    minimize_kernel(kernel.ast, lambda source: "main" in source)
    assert render_kernel(kernel.ast) == before


def test_minimizer_shrinks_to_the_triggering_feature():
    """Predicate keyed on one marker statement: everything else must go."""
    kernel = generate_kernel(0, 3)
    # plant a recognisable statement the predicate latches onto
    from repro.fuzz.gen import Assign, Decl, Var

    kernel.ast.main_body.insert(
        0, Decl("int", "marker_v", Lit("12345"), None)
    )
    kernel.ast.main_body.insert(
        1, Assign(Var("marker_v"), "=", Lit("54321"))
    )

    def still_fails(source: str) -> bool:
        return "54321" in source

    original = render_kernel(kernel.ast)
    shrunk = render_kernel(minimize_kernel(kernel.ast, still_fails))
    assert "54321" in shrunk
    assert len(shrunk.splitlines()) < len(original.splitlines())
    # aggressive: a single-marker predicate should strip helpers/arrays
    assert len(shrunk.splitlines()) <= 12, shrunk


def test_minimizer_respects_check_budget():
    kernel = generate_kernel(0, 4)
    calls = 0

    def counting(source: str) -> bool:
        nonlocal calls
        calls += 1
        return True

    minimize_kernel(kernel.ast, counting, max_checks=25)
    assert calls <= 25


def test_minimizer_rejects_crashing_candidates():
    kernel = generate_kernel(0, 5)
    baseline = render_kernel(kernel.ast)

    def fragile(source: str) -> bool:
        if source != baseline:
            raise RuntimeError("boom")
        return True

    # crashes count as "not the same failure": nothing shrinks, but the
    # minimizer still terminates and returns a failing program
    out = minimize_kernel(kernel.ast, fragile)
    assert render_kernel(out) == baseline


def test_minimizer_propagates_infrastructure_errors():
    """A broken harness (bad corpus dir, pickle failure, ...) must abort
    the minimization loudly, never masquerade as "no longer reproduces"
    (which would silently accept a meaningless shrunken candidate)."""
    import pytest

    kernel = generate_kernel(0, 5)
    baseline = render_kernel(kernel.ast)

    def broken_harness(source: str) -> bool:
        if source != baseline:
            raise OSError("corpus dir vanished")
        return True

    with pytest.raises(OSError, match="corpus dir vanished"):
        minimize_kernel(kernel.ast, broken_harness)
