"""The stress-benchmark corpus subsystem (:mod:`repro.corpus`).

Covers the promotion pipeline (determinism across processes and hash
seeds), the golden format (checksums, corruption, schema), drift
detection (an injected stats perturbation must fail replay with a
readable diff), and the kernel catalog (promoted kernels addressable
via ``repro.kernels.load``, ambiguity/duplicate handling).

The promotion fixture runs a deliberately tiny campaign (one scoring
machine, one pinned machine) so tier-1 stays fast; the full 13-machine
x 5-engine replay runs as its own CI step (``repro corpus replay``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import (
    GoldenError,
    PromoteConfig,
    discover_entries,
    load_golden,
    promote,
    replay_entries,
)
from repro.corpus.goldens import _checksum, golden_path_for, make_golden, save_golden
from repro.corpus.score import KernelTraits, select_diverse

PIN_MACHINES = ("m-tta-2",)


@pytest.fixture(scope="module")
def promoted(tmp_path_factory):
    """A small promoted corpus: 2 kernels pinned on one machine."""
    out = tmp_path_factory.mktemp("promoted")
    report = promote(
        PromoteConfig(seed=5, count=3, target=2, machines=PIN_MACHINES, out_dir=out)
    )
    assert len(report.selected) == 2
    return out


def _replay(out: Path):
    entries = discover_entries(
        promoted_dir=out, corpus_dir=out / "no-regressions", include_builtin=False
    )
    return entries, replay_entries(entries)


class TestPromotion:
    def test_writes_mc_meta_and_golden_per_kernel(self, promoted):
        mcs = sorted(p.name for p in promoted.glob("*.mc"))
        assert len(mcs) == 2
        for mc in promoted.glob("*.mc"):
            assert mc.with_suffix(".json").exists()
            golden = load_golden(golden_path_for(mc))
            assert tuple(golden["machines"]) == PIN_MACHINES
            runs = golden["machines"]["m-tta-2"]
            assert set(runs) == {"checked", "fast", "turbo", "native", "batch"}
            for record in runs.values():
                assert record["exit_code"] == golden["expected_exit"]
                assert record["cycles"] > 0

    def test_replay_passes_on_fresh_corpus(self, promoted):
        entries, report = _replay(promoted)
        assert len(entries) == 2 and all(e.ok for e in entries)
        assert report.ok, "\n".join(report.broken + report.drift)
        assert report.cases == 2

    def test_meta_has_no_timestamps(self, promoted):
        # byte-determinism: nothing time- or host-dependent may be
        # persisted anywhere in the corpus
        for sidecar in promoted.glob("*.json"):
            payload = json.loads(sidecar.read_text())
            assert not any("time" in k or "date" in k for k in payload), sidecar


class TestPromotionDeterminism:
    def test_byte_identical_across_hashseed_and_process(self, tmp_path):
        """Same seed -> byte-identical corpus under different PYTHONHASHSEED."""
        digests = []
        for hashseed, sub in (("0", "a"), ("4242", "b")):
            out = tmp_path / sub
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            subprocess.run(
                [
                    sys.executable, "-m", "repro", "corpus", "promote",
                    "--seed", "5", "--count", "3", "--target", "2",
                    "--machines", "m-tta-2", "--out-dir", str(out), "-q",
                ],
                check=True,
                env=env,
                cwd=Path(__file__).resolve().parents[1],
            )
            digests.append(
                {p.name: p.read_bytes() for p in sorted(out.iterdir())}
            )
        assert list(digests[0]) == list(digests[1])
        for name in digests[0]:
            assert digests[0][name] == digests[1][name], f"{name} differs"


class TestDriftDetection:
    def test_injected_stats_drift_fails_with_readable_diff(self, promoted, tmp_path):
        out = tmp_path / "drifted"
        out.mkdir()
        for p in promoted.iterdir():
            (out / p.name).write_bytes(p.read_bytes())
        victim = sorted(out.glob("*.golden.json"))[0]
        payload = json.loads(victim.read_text())
        record = payload["machines"]["m-tta-2"]["turbo"]
        record["cycles"] += 1
        # keep the checksum valid: this simulates the *engines* drifting
        # from a well-formed golden, not file corruption
        payload["checksum"] = _checksum(payload)
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        entries, report = _replay(out)
        assert not report.ok
        assert any(
            "cycles" in line and "golden=" in line and "observed=" in line
            for line in report.drift
        ), report.drift
        # the drift names the kernel, machine and engine it blames
        assert any("m-tta-2/turbo" in line for line in report.drift), report.drift

    def test_exit_code_drift_is_detected(self, promoted, tmp_path):
        out = tmp_path / "exitdrift"
        out.mkdir()
        for p in promoted.iterdir():
            (out / p.name).write_bytes(p.read_bytes())
        victim = sorted(out.glob("*.golden.json"))[0]
        payload = json.loads(victim.read_text())
        payload["expected_exit"] = (payload["expected_exit"] + 1) % 2**32
        payload["checksum"] = _checksum(payload)
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        _, report = _replay(out)
        assert not report.ok
        assert any("exit" in line for line in report.drift), report.drift


class TestGoldenIntegrity:
    def test_corrupted_golden_json_is_broken_not_skipped(self, promoted, tmp_path):
        out = tmp_path / "corrupt"
        out.mkdir()
        for p in promoted.iterdir():
            (out / p.name).write_bytes(p.read_bytes())
        victim = sorted(out.glob("*.golden.json"))[0]
        victim.write_text("{ not json at all")

        entries, report = _replay(out)
        assert not report.ok
        assert any("not valid JSON" in line for line in report.broken), report.broken
        # the intact entry still replays
        assert report.cases == 1

    def test_hand_edited_golden_fails_checksum(self, promoted, tmp_path):
        out = tmp_path / "tampered"
        out.mkdir()
        for p in promoted.iterdir():
            (out / p.name).write_bytes(p.read_bytes())
        victim = sorted(out.glob("*.golden.json"))[0]
        payload = json.loads(victim.read_text())
        payload["machines"]["m-tta-2"]["fast"]["cycles"] += 100  # no re-checksum
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        with pytest.raises(GoldenError, match="checksum"):
            load_golden(victim)
        _, report = _replay(out)
        assert any("checksum" in line for line in report.broken), report.broken

    def test_source_edit_invalidates_golden(self, promoted, tmp_path):
        out = tmp_path / "srcdrift"
        out.mkdir()
        for p in promoted.iterdir():
            (out / p.name).write_bytes(p.read_bytes())
        victim = sorted(out.glob("*.mc"))[0]
        victim.write_text(victim.read_text() + "\n/* tweaked */\n")

        entries, _ = _replay(out)
        bad = [e for e in entries if not e.ok]
        assert len(bad) == 1 and "hash mismatch" in bad[0].error

    def test_missing_golden_is_loud(self, promoted, tmp_path):
        out = tmp_path / "missing"
        out.mkdir()
        for p in promoted.glob("*.mc"):
            (out / p.name).write_bytes(p.read_bytes())

        entries, report = _replay(out)
        assert entries and all(not e.ok for e in entries)
        assert all("missing golden" in line for line in report.broken)

    def test_save_refuses_stale_checksum(self, tmp_path):
        payload = make_golden("x", "int main(void){return 0;}", 0,
                              {"m-tta-2": {"fast": {"exit_code": 0}}},
                              ("fast",), 1000)
        payload["expected_exit"] = 1  # stale checksum now
        with pytest.raises(GoldenError, match="checksum"):
            save_golden(tmp_path / "x.golden.json", payload)


class TestKernelCatalog:
    def test_promoted_kernels_are_addressable(self, promoted, monkeypatch):
        from repro.kernels import catalog, load

        monkeypatch.setenv("REPRO_PROMOTED_CORPUS", str(promoted))
        names = catalog()
        stress = [n for n in names if n.startswith("stress-")]
        assert len(stress) == 2
        assert load(stress[0]).startswith("/*")

    def test_unknown_kernel_error_lists_promoted(self, promoted, monkeypatch):
        from repro.kernels import load

        monkeypatch.setenv("REPRO_PROMOTED_CORPUS", str(promoted))
        with pytest.raises(KeyError, match="stress-5-"):
            load("definitely-not-a-kernel")

    def test_promoted_shadowing_builtin_is_ambiguous(self, tmp_path, monkeypatch):
        from repro.kernels import load

        (tmp_path / "sha.mc").write_text("int main(void) { return 0; }")
        monkeypatch.setenv("REPRO_PROMOTED_CORPUS", str(tmp_path))
        with pytest.raises(KeyError, match="ambiguous"):
            load("sha")
        # the builtin remains reachable through kernel_source
        from repro.kernels import kernel_source

        assert "sha" in kernel_source("sha")[:200]

    def test_catalog_hides_shadowed_duplicates(self, tmp_path, monkeypatch):
        from repro.kernels import ALL_KERNELS, catalog

        (tmp_path / "sha.mc").write_text("int main(void) { return 0; }")
        monkeypatch.setenv("REPRO_PROMOTED_CORPUS", str(tmp_path))
        assert catalog() == ALL_KERNELS  # no duplicate 'sha' entry

    def test_sweep_rejects_unknown_and_ambiguous(self, tmp_path, monkeypatch):
        from repro.pipeline import resolve_kernel_sources

        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel_sources("nope")
        (tmp_path / "sha.mc").write_text("int main(void) { return 0; }")
        monkeypatch.setenv("REPRO_PROMOTED_CORPUS", str(tmp_path))
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_kernel_sources("sha")

    def test_promoted_expected_exit_comes_from_golden(self, promoted, monkeypatch):
        from repro.kernels import expected_exit

        monkeypatch.setenv("REPRO_PROMOTED_CORPUS", str(promoted))
        name = sorted(p.stem for p in promoted.glob("*.mc"))[0]
        golden = load_golden(promoted / f"{name}.golden.json")
        assert expected_exit(name) == golden["expected_exit"]
        assert expected_exit("sha") == 0


class TestSelection:
    def _traits(self, name, **kw):
        base = dict(exit_code=0, cycles=100, branch_ops=0, loads=0, stores=0,
                    distinct_opcodes=10)
        base.update(kw)
        return KernelTraits(name=name, **base)

    def test_axes_pick_extremes(self):
        pool = [
            self._traits("branchy", branch_ops=900),
            self._traits("diverse", distinct_opcodes=40),
            self._traits("memory", loads=500, stores=500),
            self._traits("boring"),
        ]
        chosen = select_diverse(pool, 3)
        names = [t.name for t, _ in chosen]
        assert names == ["branchy", "diverse", "memory"]
        assert [axis for _, axis in chosen] == ["branchy", "fu-diverse", "mem-heavy"]

    def test_selection_is_order_independent(self):
        pool = [
            self._traits("a", branch_ops=5),
            self._traits("b", distinct_opcodes=30),
            self._traits("c", cycles=9999),
            self._traits("d", loads=50),
        ]
        fwd = select_diverse(pool, 4)
        rev = select_diverse(list(reversed(pool)), 4)
        assert [(t.name, a) for t, a in fwd] == [(t.name, a) for t, a in rev]

    def test_target_bounds_selection(self):
        pool = [self._traits(f"k{i}", cycles=i) for i in range(10)]
        assert len(select_diverse(pool, 4)) == 4
        assert len(select_diverse(pool, 0)) == 0
        assert len(select_diverse(pool, 99)) == 10  # exhausts the pool


class TestBuiltinGoldens:
    def test_fft_golden_ships_and_discovers_clean(self):
        entries = [
            e
            for e in discover_entries(
                promoted_dir="/nonexistent", corpus_dir="/nonexistent"
            )
            if e.group == "builtin"
        ]
        fft = [e for e in entries if e.name == "fft"]
        assert len(fft) == 1
        assert fft[0].ok, fft[0].error
        golden = fft[0].golden
        assert golden["expected_exit"] == 0
        assert len(golden["machines"]) == 13
