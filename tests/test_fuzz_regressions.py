"""Regression replay: every reproducer in ``fuzz/corpus/`` must match
its pinned golden stats on its recorded machine, on every commit.

Entries come from two sources:

* **minimized reproducers** a fuzz campaign persisted for a real
  divergence -- once the underlying bug is fixed, the entry stays and
  keeps the bug fixed forever;
* **sentinels** seeded by hand for historically risky semantics
  (INT_MIN division, shift masking, sub-word memory, the FNV state
  fold) -- they guard the engine-equivalence claim even while no bug is
  open.

This used to re-derive the expectation from the oracle on every run;
it now rides the generic golden-replay harness (:mod:`repro.corpus`):
each reproducer carries a ``.golden.json`` pinning its exit code,
cycle count and every transport counter per engine, so the assertion
is strictly stronger — not just "engines agree with the oracle today"
but "the engines produce byte-for-byte what they produced when the
golden was pinned".  Intentional toolchain changes re-pin via
``repro corpus pin``.
"""

from __future__ import annotations

import pytest

from repro.corpus import discover_entries, replay_entries
from repro.fuzz.corpus import default_corpus_dir

ENTRIES = [
    e
    for e in discover_entries(
        promoted_dir="/nonexistent-promoted", include_builtin=False
    )
    if e.group == "regression"
]


def test_shipped_corpus_is_present():
    # the repo seeds sentinel entries; an empty corpus means the replay
    # below silently tests nothing, which must never happen quietly
    assert default_corpus_dir().is_dir()
    assert len(ENTRIES) >= 4


def test_every_reproducer_has_a_wellformed_golden():
    # discovery marks missing/corrupt goldens and source-hash drift as
    # broken instead of skipping; none of that may ship
    broken = [f"{e.name}: {e.error}" for e in ENTRIES if not e.ok]
    assert not broken, "\n".join(broken)


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_reproducer_matches_golden(entry):
    report = replay_entries([entry])
    assert report.cases >= 1, "reproducer must actually execute"
    assert report.ok, "\n".join(report.broken + report.drift)
