"""Regression replay: every reproducer in ``fuzz/corpus/`` must agree
with the oracle on its recorded machine, across every engine, on every
commit.

Entries come from two sources:

* **minimized reproducers** a fuzz campaign persisted for a real
  divergence -- once the underlying bug is fixed, the entry stays and
  keeps the bug fixed forever;
* **sentinels** seeded by hand for historically risky semantics
  (INT_MIN division, shift masking, sub-word memory, the FNV state
  fold) -- they guard the engine-equivalence claim even while no bug is
  open.

The assertion is intentionally total: the compiled program must produce
the oracle's exit code under *every* engine mode and all engines must
agree on every statistics counter (:func:`repro.fuzz.run_case` checks
both).
"""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzCase, load_corpus, reference_run, run_case
from repro.fuzz.corpus import default_corpus_dir

ENTRIES = load_corpus()


def test_shipped_corpus_is_present():
    # the repo seeds sentinel entries; an empty corpus means the replay
    # below silently tests nothing, which must never happen quietly
    assert default_corpus_dir().is_dir()
    assert len(ENTRIES) >= 4


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_reproducer_stays_fixed(entry):
    machine = entry.machine or "m-tta-1"
    expected = reference_run(entry.source)
    report = run_case(
        FuzzCase(
            machine=machine,
            kernel=entry.name,
            source=entry.source,
            expected_exit=expected,
        )
    )
    assert report.ok, "\n".join(d.summary() for d in report.divergences)
    assert report.runs, "reproducer must actually execute"
    for mode, record in report.runs.items():
        assert record["exit_code"] == expected, (mode, record)
