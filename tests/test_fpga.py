"""FPGA area/timing model tests: structure, monotonicity and the
paper-shape relationships of Table III."""

from __future__ import annotations

import pytest

from repro.eval.paper_data import PAPER_SYNTHESIS
from repro.fpga import estimate_fmax, estimate_resources, synthesize
from repro.fpga.resources import ic_luts, rf_luts
from repro.machine import RegisterFile, build_machine, preset_names


class TestRFModel:
    def test_single_port_32_deep(self):
        luts, ram = rf_luts(RegisterFile("r", 32, 1, 1))
        assert luts == ram == 24  # one RAM32M-packed bank

    def test_read_ports_replicate(self):
        one, _ = rf_luts(RegisterFile("r", 32, 1, 1))
        two, _ = rf_luts(RegisterFile("r", 32, 2, 1))
        assert two == 2 * one

    def test_multi_write_superlinear(self):
        simple, _ = rf_luts(RegisterFile("r", 64, 1, 1))
        vliw, _ = rf_luts(RegisterFile("r", 64, 4, 2))
        assert vliw > 8 * simple  # replication + LVT + muxing

    def test_monotone_in_every_port_dimension(self):
        base, _ = rf_luts(RegisterFile("r", 64, 2, 2))
        more_reads, _ = rf_luts(RegisterFile("r", 64, 3, 2))
        more_writes, _ = rf_luts(RegisterFile("r", 64, 2, 3))
        deeper, _ = rf_luts(RegisterFile("r", 96, 2, 2))
        assert more_reads > base
        assert more_writes > base
        assert deeper > base

    def test_paper_rf_points(self):
        # the model was calibrated on these; they must stay close
        cases = {
            "m-tta-1": 24,
            "m-tta-2": 44,
            "p-tta-2": 48,
            "p-vliw-3": 144,
            "m-tta-3": 210,
            "p-tta-3": 72,
        }
        for name, paper in cases.items():
            machine = build_machine(name)
            ours = sum(rf_luts(rf)[0] for rf in machine.register_files)
            assert abs(ours - paper) / paper < 0.15, (name, ours, paper)


class TestICModel:
    def test_bus_merging_cheaper(self):
        assert ic_luts(build_machine("bm-tta-2")) < ic_luts(build_machine("p-tta-2"))

    def test_more_rfs_more_muxing(self):
        assert ic_luts(build_machine("p-tta-2")) > ic_luts(build_machine("m-tta-2"))


class TestTiming:
    def test_monolithic_vliw3_is_slowest(self):
        fmaxes = {name: estimate_fmax(build_machine(name)) for name in preset_names()}
        assert min(fmaxes, key=fmaxes.get) == "m-vliw-3"

    def test_tta1_fastest(self):
        fmaxes = {name: estimate_fmax(build_machine(name)) for name in preset_names()}
        assert max(fmaxes, key=fmaxes.get) == "m-tta-1"

    def test_partitioning_recovers_fmax(self):
        assert estimate_fmax(build_machine("p-vliw-3")) > estimate_fmax(
            build_machine("m-vliw-3")
        )

    def test_fmax_within_band_of_paper(self):
        for name in preset_names():
            paper = PAPER_SYNTHESIS[name][0]
            ours = estimate_fmax(build_machine(name))
            assert abs(ours - paper) / paper < 0.12, (name, ours, paper)


class TestTableIIIShape:
    """The structural claims of the paper's synthesis section."""

    def test_vliw_rf_blowup_2_issue(self):
        # paper: m-vliw-2 needs 6-14x the RF logic of the TTA variants
        vliw = estimate_resources(build_machine("m-vliw-2")).rf_luts
        for other in ("m-tta-2", "p-tta-2", "bm-tta-2"):
            tta = estimate_resources(build_machine(other)).rf_luts
            assert vliw / tta > 5, (other, vliw, tta)

    def test_vliw_rf_blowup_3_issue(self):
        vliw = estimate_resources(build_machine("m-vliw-3")).rf_luts
        for other in ("p-tta-3", "bm-tta-3"):
            tta = estimate_resources(build_machine(other)).rf_luts
            assert vliw / tta > 9

    def test_tta_core_smaller_than_monolithic_vliw(self):
        # paper: 2-issue TTA needs ~67-80% of the VLIW core LUTs
        for pair, band in (
            (("m-tta-2", "m-vliw-2"), (0.60, 0.90)),
            (("m-tta-3", "m-vliw-3"), (0.45, 0.75)),
        ):
            tta = estimate_resources(build_machine(pair[0])).core_luts
            vliw = estimate_resources(build_machine(pair[1])).core_luts
            assert band[0] < tta / vliw < band[1], (pair, tta / vliw)

    def test_partitioned_points_cluster(self):
        # paper: with split RFs, VLIW and TTA land close together
        p_vliw = estimate_resources(build_machine("p-vliw-2")).core_luts
        p_tta = estimate_resources(build_machine("p-tta-2")).core_luts
        assert 0.8 < p_tta / p_vliw < 1.2

    def test_all_cores_within_30pct_of_paper(self):
        for name in preset_names():
            paper = PAPER_SYNTHESIS[name][1]
            ours = estimate_resources(build_machine(name)).core_luts
            assert abs(ours - paper) / paper < 0.30, (name, ours, paper)

    def test_three_dsp_blocks_everywhere(self):
        for name in preset_names():
            assert estimate_resources(build_machine(name)).dsps == 3, name


class TestReport:
    def test_synthesize_bundles_everything(self):
        report = synthesize(build_machine("m-tta-2"))
        assert report.fmax_mhz > 100
        assert report.resources.core_luts > 0
        one_second_of_cycles = int(report.fmax_mhz * 1e6)
        assert report.runtime_seconds(one_second_of_cycles) == pytest.approx(1.0, rel=0.01)

    def test_slices_derived(self):
        report = synthesize(build_machine("m-vliw-3"))
        assert report.resources.slices >= report.resources.core_luts // 4


class TestModelRows:
    """Every preset yields a complete, self-consistent Table III model row;
    unknown design points fail loudly (ISSUE PR 5 satellite)."""

    def test_every_preset_produces_a_complete_row(self):
        names = preset_names()
        assert len(names) == 13  # the paper's full design-point set
        for name in names:
            res = estimate_resources(build_machine(name))
            assert res.machine_name == name
            # every field populated and internally consistent
            assert res.core_luts > 0
            assert res.rf_luts > 0
            assert 0 < res.lutram <= res.rf_luts
            assert res.ic_luts >= 0
            assert res.ffs > 0
            assert res.dsps >= 0
            assert res.slices >= max(res.core_luts // 4, res.ffs // 8)

    def test_rows_cover_paper_table3(self):
        # the analytic model emits a row for exactly the paper's points
        assert set(preset_names()) == set(PAPER_SYNTHESIS)

    def test_microblaze_rows_are_vendor_constants(self):
        # closed IP: measured, not modelled — the paper numbers verbatim
        for name in ("mblaze-3", "mblaze-5"):
            res = estimate_resources(build_machine(name))
            fmax, core, rf, lutram, _ic, ffs = PAPER_SYNTHESIS[name]
            assert res.core_luts == core
            assert res.rf_luts == rf
            assert res.lutram == lutram
            assert res.ffs == ffs
            assert res.ic_luts == 0  # no exposed transport network

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError, match="unknown machine preset"):
            build_machine("m-tta-99")
        with pytest.raises(KeyError, match="known"):
            synthesize(build_machine("not-a-core"))


class TestStructuralVendorLookup:
    """The measured MicroBlaze constants key on *structure*, not name:
    generated design points can never inherit (or shadow) them by
    naming accident."""

    def test_renamed_clone_still_gets_vendor_constants(self):
        from dataclasses import replace

        from repro.fpga.resources import vendor_preset_name

        mb = build_machine("mblaze-3")
        clone = replace(mb, name="generated-clone")
        assert vendor_preset_name(clone) == "mblaze-3"
        assert estimate_resources(clone).core_luts == estimate_resources(mb).core_luts
        assert estimate_fmax(clone) == estimate_fmax(mb)

    def test_structurally_changed_machine_falls_to_analytic_model(self):
        from dataclasses import replace

        from repro.fpga.resources import vendor_preset_name

        mb = build_machine("mblaze-3")
        mutated = replace(
            mb,
            name="mblaze-3",  # still *named* like the vendor core
            scalar_timing=replace(
                mb.scalar_timing, load_extra=mb.scalar_timing.load_extra + 1
            ),
        )
        assert vendor_preset_name(mutated) is None
        assert estimate_fmax(mutated) != estimate_fmax(mb)
        report = estimate_resources(mutated)
        # analytic model output, not the vendor row (which has ic_luts=0
        # and the measured LUT count)
        assert report.core_luts != estimate_resources(mb).core_luts

    def test_generated_tta_machines_never_keyerror(self):
        from repro.explore import campaign_rng, mutate_machine

        rng = campaign_rng(9)
        machine = build_machine("m-tta-2")
        for _ in range(5):
            machine = mutate_machine(machine, rng)
            report = synthesize(machine)
            assert report.resources.core_luts > 0
            assert report.fmax_mhz > 0
