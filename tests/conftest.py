"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import build_machine, preset_names

#: machines that exercise every scheduler/simulator style, kept small for
#: tests that sweep (the full 13-point sweep lives in the benchmarks)
CORE_MACHINES = ("mblaze-3", "mblaze-5", "m-tta-1", "m-vliw-2", "m-tta-2", "bm-tta-2", "m-vliw-3", "p-tta-3")


@pytest.fixture(scope="session")
def all_machine_names():
    return preset_names()


@pytest.fixture(scope="session", params=CORE_MACHINES)
def core_machine(request):
    return build_machine(request.param)
