"""The differential case runner: oracle comparison, cross-engine
comparison, and the report/verdict plumbing."""

from __future__ import annotations

import pytest

from repro.fuzz import ALL_MODES, FuzzCase, FuzzCaseReport, run_case
from repro.fuzz.diff import REPORT_SCHEMA

OK_SOURCE = """
int main() {
  unsigned h = 2166136261u;
  int a[8];
  for (int i = 0; i < 8; i = i + 1) { a[i] = i * 5 - 7; }
  for (int i = 0; i < 8; i = i + 1) { h = (h ^ (unsigned)a[i]) * 16777619u; }
  return (int)(h & 63u);
}
"""


def _expected(source: str) -> int:
    from repro.fuzz import reference_run

    return reference_run(source)


def _case(machine: str, source: str = OK_SOURCE, expected: int | None = None,
          modes=ALL_MODES) -> FuzzCase:
    return FuzzCase(
        machine=machine,
        kernel="diff-test",
        source=source,
        expected_exit=_expected(source) if expected is None else expected,
        modes=tuple(modes),
    )


@pytest.mark.parametrize("machine", ["m-tta-2", "m-vliw-2"])
def test_agreeing_case_runs_every_mode(machine):
    report = run_case(_case(machine))
    assert report.ok
    assert set(report.runs) == set(ALL_MODES)
    # cross-engine: every statistics field identical, not just exit codes
    baseline = report.runs["checked"]
    for mode in ("fast", "turbo", "native", "batch"):
        assert report.runs[mode] == baseline


def test_scalar_machine_uses_single_pseudo_mode():
    report = run_case(_case("mblaze-3"))
    assert report.ok
    assert set(report.runs) == {"scalar"}


def test_wrong_expectation_is_one_divergence_per_mode():
    report = run_case(_case("m-tta-2", expected=255))
    assert not report.ok
    kinds = {(d.mode, d.kind) for d in report.divergences}
    assert kinds == {(m, "exit-mismatch") for m in ALL_MODES}
    for d in report.divergences:
        assert d.expected == 255
        assert d.observed == report.runs[d.mode]["exit_code"]
        assert "exit-mismatch" in d.summary()


def test_mode_subset_is_respected():
    report = run_case(_case("m-tta-2", modes=("checked", "fast")))
    assert report.ok
    assert set(report.runs) == {"checked", "fast"}


def test_report_roundtrips_through_dict():
    report = run_case(_case("m-tta-1", expected=254))
    payload = report.to_dict()
    assert payload["schema"] == REPORT_SCHEMA
    again = FuzzCaseReport.from_dict(payload)
    assert again is not None
    assert again.runs == report.runs
    assert again.divergences == report.divergences
    # verdicts from another schema must be recomputed, not trusted
    payload["schema"] = REPORT_SCHEMA + 1
    assert FuzzCaseReport.from_dict(payload) is None


def test_batch_mode_runs_perturbed_vector_pass():
    """A kernel with initialised globals triggers the batched perturbed-
    input differential pass; correct engines produce zero divergences."""
    source = """
int g[4] = {7, 3, 9, 1};
int main() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { s = s + g[i % 4] * i; }
  return s & 63;
}
"""
    report = run_case(_case("m-tta-2", source=source))
    assert report.ok, [d.summary() for d in report.divergences]
    assert report.runs["batch"] == report.runs["checked"]


def test_infrastructure_errors_propagate_not_classified(monkeypatch):
    """Harness faults (OOM, I/O) must escape run_case so the executor
    records a TaskError, never be laundered into a 'crash' divergence."""
    import repro.sim as sim_mod

    def exploding(*args, **kwargs):
        raise MemoryError("simulated harness OOM")

    monkeypatch.setattr(sim_mod, "run_compiled", exploding)
    with pytest.raises(MemoryError, match="simulated harness OOM"):
        run_case(_case("m-tta-2", modes=("checked",)))


def test_cross_engine_divergence_is_reported_without_oracle_help(monkeypatch):
    """A checked-vs-fast drift surfaces even when the oracle agrees with
    one of them: inject a wrong ``sub`` into the checked TTA engine."""
    import repro.isa.semantics as semantics
    import repro.sim.tta_sim as tta_sim

    real = semantics.evaluate

    def buggy(op, operands):
        if op == "sub":
            return (operands[0] - operands[1] + 1) & 0xFFFFFFFF
        return real(op, operands)

    monkeypatch.setattr(tta_sim, "evaluate", buggy)
    report = run_case(_case("m-tta-2", modes=("checked", "fast")))
    assert not report.ok
    kinds = {d.kind for d in report.divergences}
    # the checked engine disagrees with the oracle (exit-mismatch) and
    # with the fast engine (stats-mismatch via the cross-engine sweep)
    assert "exit-mismatch" in kinds or "stats-mismatch" in kinds
    assert any(d.mode in ("checked", "fast") for d in report.divergences)
