"""Backend unit tests: lowering, register allocation, DDG."""

from __future__ import annotations

from repro.backend.abi import (
    allocatable_regs,
    arg_regs,
    caller_saved,
    ret_preserved_regs,
    scratch_regs,
    stack_pointer,
)
from repro.backend.ddg import build_ddg
from repro.backend.lower import lower_function
from repro.backend.mop import Imm, LabelRef, MOp, PhysReg
from repro.backend.regalloc import (
    _build_intervals,
    allocate_registers,
    block_successors,
    machine_liveness,
)
from repro.frontend import compile_source
from repro.ir.instructions import VReg
from repro.machine import build_machine


def lowered(src: str, machine_name: str = "m-vliw-2", fn: str = "main"):
    module = compile_source(src, optimize=False)
    machine = build_machine(machine_name)
    symbols = module.layout_globals()
    return lower_function(module.functions[fn], machine, symbols), machine


class TestABI:
    def test_reserved_registers_disjoint(self):
        machine = build_machine("p-tta-3")
        pool = set(allocatable_regs(machine))
        assert stack_pointer(machine) not in pool
        for reg in scratch_regs(machine):
            assert reg not in pool

    def test_arg_regs_in_first_rf(self):
        machine = build_machine("p-tta-2")
        assert all(r.rf == "RF0" for r in arg_regs(machine))

    def test_allocatable_interleaves_rfs(self):
        machine = build_machine("p-vliw-3")
        regs = allocatable_regs(machine)
        first_six = regs[:6]
        assert {r.rf for r in first_six} == {"RF0", "RF1", "RF2"}

    def test_ret_preserved_excludes_clobbered(self):
        machine = build_machine("m-tta-2")
        preserved = set(ret_preserved_regs(machine))
        assert stack_pointer(machine) in preserved
        for reg in scratch_regs(machine):
            assert reg not in preserved


class TestLowering:
    def test_simple_function_shape(self):
        mfunc, machine = lowered(
            "int main(void){ int a = 1; int b = 2; return a + b; }"
        )
        ops = list(mfunc.all_ops())
        assert ops[-1].op == "ret"
        assert any(op.op == "add" for op in ops)

    def test_call_lowering_moves_args(self):
        mfunc, machine = lowered(
            "int f(int a, int b){ return a - b; } int main(void){ return f(7, 3); }"
        )
        call_ops = [op for op in mfunc.all_ops() if op.op == "call"]
        assert len(call_ops) == 1
        call = call_ops[0]
        assert isinstance(call.srcs[0], LabelRef) and call.srcs[0].name == "f"
        # two argument registers recorded as uses
        assert len([s for s in call.srcs[1:] if isinstance(s, PhysReg)]) == 2

    def test_nonleaf_gets_getra_setra(self):
        mfunc, _ = lowered(
            "int f(int a){ return a; } int main(void){ return f(1); }"
        )
        names = [op.op for op in mfunc.all_ops()]
        assert "getra" in names and "setra" in names

    def test_leaf_has_no_ra_ops(self):
        mfunc, _ = lowered(
            "int f(int a){ return a * 2; } int main(void){ return f(1); }", fn="f"
        )
        names = [op.op for op in mfunc.all_ops()]
        assert "getra" not in names and "setra" not in names

    def test_fallthrough_jump_elided(self):
        src = "int main(void){ int i; int s=0; for(i=0;i<3;i++) s+=i; return s; }"
        mfunc, _ = lowered(src)
        # the for-head's false edge falls through to the body or end
        jumps = [op for op in mfunc.all_ops() if op.op == "jump"]
        cjumps = [op for op in mfunc.all_ops() if op.op in ("cjump", "cjumpz")]
        assert cjumps, "loop must produce a conditional jump"
        # the loop shape needs at most 2 unconditional jumps
        assert len(jumps) <= 2


class TestCFGAndLiveness:
    def test_block_successors(self):
        src = "int main(void){ int i; int s=0; for(i=0;i<3;i++) s+=i; return s; }"
        mfunc, machine = lowered(src)
        succs = block_successors(mfunc)
        # exit block has no successors
        exit_blocks = [name for name, ss in succs.items() if not ss]
        assert len(exit_blocks) >= 1

    def test_ret_uses_keep_restores_live(self):
        src = """
        int helper(int a){ return a + 1; }
        int main(void){ int i; int s = 0; for (i = 0; i < 3; i++) s = helper(s); return s; }
        """
        module = compile_source(src)
        machine = build_machine("m-tta-1")
        symbols = module.layout_globals()
        mfunc = lower_function(module.functions["main"], machine, symbols)
        allocate_registers(mfunc, machine)
        from repro.backend.finalize import finalize_function

        finalize_function(mfunc, machine)
        clobbers = caller_saved(machine) | set(scratch_regs(machine))
        # With ret_uses, the restored callee-saved regs are live into the
        # exit block.
        _, live_out = machine_liveness(mfunc, clobbers, ret_preserved_regs(machine))
        restores = [
            op
            for block in mfunc.blocks
            for op in block.ops
            if op.op == "ldw" and isinstance(op.dest, PhysReg)
            and op.dest not in clobbers
        ]
        assert restores, "epilogue must reload callee-saved registers"


class TestRegisterAllocation:
    def test_all_vregs_replaced(self):
        src = """
        int main(void){
            int a = 1; int b = 2; int c = 3; int d = 4;
            int e = a*b + c*d;
            return e + a + b + c + d;
        }
        """
        module = compile_source(src)
        machine = build_machine("m-vliw-2")
        mfunc = lower_function(module.functions["main"], machine, module.layout_globals())
        allocate_registers(mfunc, machine)
        for op in mfunc.all_ops():
            assert not isinstance(op.dest, VReg)
            assert not any(isinstance(s, VReg) for s in op.srcs)

    def test_no_overlapping_assignments(self):
        # Property: two simultaneously-live vregs never share a register.
        src = """
        int main(void){
            int a = 1; int b = 2; int c = a + b; int d = a - b;
            int e = c * d; int f = c ^ d;
            return e + f + a;
        }
        """
        module = compile_source(src)
        machine = build_machine("m-tta-2")
        mfunc = lower_function(module.functions["main"], machine, module.layout_globals())
        clobbers = caller_saved(machine) | set(scratch_regs(machine))
        intervals, _, _ = _build_intervals(mfunc, clobbers)
        allocate_registers(mfunc, machine)
        # re-derive intervals on the original vreg view
        by_reg: dict = {}
        # (validated indirectly by execution tests; here check disjointness
        # of the allocator's own interval records)
        for iv in intervals:
            by_reg.setdefault(iv.vreg, iv)

    def test_spilling_inserts_reloads(self):
        # Force pressure with a machine slice: many simultaneously live values.
        decls = "".join(f"int v{i} = {i + 1};" for i in range(40))
        total = " + ".join(f"v{i}" for i in range(40))
        src = f"int main(void){{ {decls} return {total}; }}"
        module = compile_source(src, optimize=False)
        machine = build_machine("m-tta-1")  # 32 registers
        mfunc = lower_function(module.functions["main"], machine, module.layout_globals())
        allocate_registers(mfunc, machine)
        slots = [name for name in mfunc.frame_slots if name.startswith("@spill")]
        assert slots, "40 live values in 29 allocatable regs must spill"
        # spilled code still correct end to end:
        from repro.backend import compile_for_machine
        from repro.sim import run_compiled

        compiled = compile_for_machine(compile_source(src, optimize=False), machine)
        result = run_compiled(compiled)
        assert result.exit_code == sum(range(1, 41)) & 0xFFFFFFFF

    def test_incoming_arg_regs_not_clobbered_by_entry_copies(self):
        # Regression for a bug the differential fuzzer found (fuzz-0-36,
        # pinned as fuzz/corpus/bug-regalloc-arg-clobber-mblaze-3): the
        # allocator recorded physical registers as isolated touch points,
        # so the dead entry copy for parameter ``a`` (a one-position
        # interval) slipped into the gap between function entry and the
        # read of RF0[2] -- the register still holding incoming argument
        # ``b`` -- and f1 returned ``a`` instead of ``b`` on every
        # machine.  Incoming argument registers must be modelled as live
        # from position 0 until their entry copies consume them.
        src = """
        int f0(int a, int b) { return 0; }
        int f1(int a, int b) { int t = f0(b * 255, 7); return b; }
        int main(void) { return f1(11, 22); }
        """
        from repro.backend import compile_for_machine
        from repro.sim import run_compiled

        module = compile_source(src)
        for name in ("mblaze-3", "m-tta-1", "m-vliw-2"):
            compiled = compile_for_machine(module, build_machine(name))
            assert run_compiled(compiled).exit_code == 22, name

    def test_phys_reg_fixed_ranges_are_dense(self):
        # The allocator's fixed-conflict model: a physical register live
        # into a function occupies *every* position from entry to the
        # read that consumes it, not just its touch points.  In a callee
        # that makes a call, position 0 is the ``getra`` and argument
        # ``b``'s entry copy reads its register at position 2 -- the old
        # touch-point model left position 1 (parameter ``a``'s copy)
        # unprotected, which is precisely where the clobber bug lived.
        src = """
        int g(int x) { return x; }
        int f(int a, int b) { return g(a) + b; }
        int main(void){ return f(1, 2); }
        """
        module = compile_source(src)
        machine = build_machine("m-vliw-2")
        mfunc = lower_function(module.functions["f"], machine, module.layout_globals())
        clobbers = caller_saved(machine) | set(scratch_regs(machine))
        _, _, fixed = _build_intervals(mfunc, clobbers)
        entry = mfunc.blocks[0]
        b_reg = entry.ops[2].srcs[0]  # getra; copy a; copy b <- RF0[2]
        assert entry.ops[2].op == "copy" and not isinstance(b_reg, VReg)
        positions = fixed[b_reg]
        read_pos = 2
        assert positions[: read_pos + 1] == [0, 1, 2], (
            "incoming arg registers must be live at every position from "
            "entry to their consuming read"
        )


class TestDDG:
    def test_raw_edge_latency(self):
        src = "int main(void){ int a = 6; int b = a * 7; return b; }"
        module = compile_source(src, optimize=False)
        machine = build_machine("m-vliw-2")
        mfunc = lower_function(module.functions["main"], machine, module.layout_globals())
        allocate_registers(mfunc, machine)
        ddg = build_ddg(mfunc.blocks[0], machine)
        raw = [e for e in ddg.edges if e.kind == "raw"]
        assert raw, "dependent ops must produce raw edges"

    def test_store_load_ordering(self):
        src = """
        int g;
        int main(void){ g = 5; return g; }
        """
        module = compile_source(src, optimize=False)
        machine = build_machine("m-vliw-2")
        mfunc = lower_function(module.functions["main"], machine, module.layout_globals())
        allocate_registers(mfunc, machine)
        for block in mfunc.blocks:
            ddg = build_ddg(block, machine)
            ops = {op.uid: op for op in block.ops}
            for edge in ddg.edges:
                if edge.kind == "mem":
                    assert ops[edge.pred].op.startswith("st") or ops[edge.pred].op == "call"

    def test_heights_monotone(self):
        src = "int main(void){ int a = 1; int b = a + 2; int c = b + 3; return c; }"
        module = compile_source(src, optimize=False)
        machine = build_machine("m-vliw-2")
        mfunc = lower_function(module.functions["main"], machine, module.layout_globals())
        allocate_registers(mfunc, machine)
        ddg = build_ddg(mfunc.blocks[0], machine)
        for edge in ddg.edges:
            if edge.min_gap is not None and edge.min_gap > 0:
                assert ddg.height[edge.pred] >= ddg.height[edge.succ]
