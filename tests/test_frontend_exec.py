"""MiniC semantics tests: compile snippets and check interpreter results
against values computed directly in Python."""

from __future__ import annotations

import pytest

from repro.frontend import CompileError, compile_source
from repro.ir import Interpreter


def run(src: str) -> int:
    return Interpreter(compile_source(src)).run()


class TestArithmetic:
    def test_signed_division_truncates_toward_zero(self):
        assert run("int main(void){ return -7 / 2 + 10; }") == 10 - 3

    def test_signed_modulo_sign_of_dividend(self):
        assert run("int main(void){ return (-7 % 3) + 5; }") == 4

    def test_unsigned_division(self):
        assert run("int main(void){ unsigned a = 0xFFFFFFFF; return (int)(a / 16) == 0x0FFFFFFF; }") == 1

    def test_division_by_zero_defined(self):
        # The software divider returns all-ones, like many soft cores.
        assert run("int main(void){ unsigned a = 5; unsigned b = 0; return (a / b) == 0xFFFFFFFF; }") == 1

    def test_shift_semantics(self):
        assert run("int main(void){ int x = -8; return x >> 2; }") % 2**32 == (-2) % 2**32
        assert run("int main(void){ unsigned x = 0x80000000; return (int)(x >> 31); }") == 1

    def test_mixed_signedness_comparison(self):
        # unsigned comparison wins: -1 as unsigned is huge
        assert run("int main(void){ unsigned a = 1; int b = -1; return a < b; }") == 1

    def test_char_wraparound(self):
        assert run("int main(void){ char c = 127; c = c + 1; return c == -128; }") == 1

    def test_unsigned_char_wraps(self):
        assert run("int main(void){ unsigned char c = 255; c = c + 1; return c; }") == 0

    def test_short_truncation_on_store(self):
        assert (
            run("int main(void){ short s = 0x12345; return s == 0x2345; }") == 1
        )

    def test_integer_promotion_in_arith(self):
        assert run("int main(void){ char a = 100; char b = 100; return a + b; }") == 200


class TestControlFlow:
    def test_short_circuit_and(self):
        src = """
        int g;
        int bump(void){ g = g + 1; return 0; }
        int main(void){ g = 0; if (0 && bump()) return -1; return g; }
        """
        assert run(src) == 0

    def test_short_circuit_or(self):
        src = """
        int g;
        int bump(void){ g = g + 1; return 1; }
        int main(void){ g = 0; if (1 || bump()) return g; return -1; }
        """
        assert run(src) == 0

    def test_break_continue(self):
        src = """
        int main(void){
            int i; int s = 0;
            for (i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        }
        """
        assert run(src) == 1 + 3 + 5 + 7 + 9

    def test_do_while_runs_once(self):
        assert run("int main(void){ int n = 0; do { n++; } while (0); return n; }") == 1

    def test_ternary(self):
        assert run("int main(void){ int x = 5; return x > 3 ? 10 : 20; }") == 10

    def test_nested_loops(self):
        src = """
        int main(void){
            int i; int j; int c = 0;
            for (i = 0; i < 5; i++)
                for (j = 0; j <= i; j++)
                    c++;
            return c;
        }
        """
        assert run(src) == 15


class TestMemoryAndPointers:
    def test_pointer_arithmetic_scaling(self):
        src = """
        int arr[5] = {10, 20, 30, 40, 50};
        int main(void){ int *p = arr; p = p + 2; return *p + *(p + 1); }
        """
        assert run(src) == 70

    def test_pointer_difference(self):
        src = """
        int arr[10];
        int main(void){ int *a = &arr[7]; int *b = &arr[2]; return a - b; }
        """
        assert run(src) == 5

    def test_address_of_local(self):
        src = """
        void bump(int *p){ *p = *p + 5; }
        int main(void){ int x = 10; bump(&x); return x; }
        """
        assert run(src) == 15

    def test_2d_array(self):
        src = """
        int m[3][4];
        int main(void){
            int i; int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3] + m[0][1];
        }
        """
        assert run(src) == 24

    def test_local_array_initializer(self):
        src = """
        int main(void){
            int a[4] = {1, 2, 3};
            return a[0] + a[1] + a[2] + a[3];  /* trailing element zeroed */
        }
        """
        assert run(src) == 6

    def test_string_literal_and_char_access(self):
        src = """
        int main(void){
            char *s = "AB";
            return s[0] + s[1] + s[2];
        }
        """
        assert run(src) == 65 + 66

    def test_global_string_array(self):
        src = """
        char word[] = "hello";
        int main(void){
            int i; int n = 0;
            for (i = 0; word[i]; i++) n++;
            return n;
        }
        """
        assert run(src) == 5

    def test_byte_stores(self):
        src = """
        unsigned char buf[4];
        int main(void){
            buf[0] = 0x11; buf[1] = 0x22; buf[2] = 0x33; buf[3] = 0x44;
            unsigned *w = (unsigned *)buf;
            return *w == 0x44332211;
        }
        """
        assert run(src) == 1


class TestFunctions:
    def test_recursion(self):
        src = """
        int fact(int n){ if (n < 2) return 1; return n * fact(n - 1); }
        int main(void){ return fact(6); }
        """
        assert run(src) == 720

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n){ if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n){ if (n == 0) return 0; return is_even(n - 1); }
        int main(void){ return is_even(10) * 2 + is_odd(7); }
        """
        assert run(src) == 3

    def test_more_than_four_args(self):
        src = """
        int sum6(int a, int b, int c, int d, int e, int f){
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
        }
        int main(void){ return sum6(1, 2, 3, 4, 5, 6); }
        """
        assert run(src) == 1 + 4 + 9 + 16 + 25 + 36

    def test_void_function(self):
        src = """
        int g;
        void set(int v){ g = v; }
        int main(void){ set(42); return g; }
        """
        assert run(src) == 42

    def test_argument_evaluation(self):
        src = """
        int add3(int a, int b, int c){ return a + b * 10 + c * 100; }
        int main(void){ return add3(1, 2, 3); }
        """
        assert run(src) == 321


class TestGlobals:
    def test_initialized_scalar_and_expr(self):
        assert run("int g = 3 * 7 + 1; int main(void){ return g; }") == 22

    def test_negative_initializer(self):
        assert run("int g = -5; int main(void){ return g + 10; }") == 5

    def test_2d_initializer(self):
        src = """
        int m[2][3] = { {1, 2, 3}, {4, 5} };
        int main(void){ return m[0][2] + m[1][1] + m[1][2]; }
        """
        assert run(src) == 8

    def test_pointer_global(self):
        src = """
        int data[4] = {9, 8, 7, 6};
        int *p = data;
        int main(void){ return p[1]; }
        """
        assert run(src) == 8


class TestSemaErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "int main(void){ return x; }",
            "int main(void){ int a; int a; return 0; }",
            "int main(void){ break; }",
            "int f(int a); int f(unsigned a){ return 0; } int main(void){ return 0; }",
            "int main(void){ return f(1); }",
            "int f(int a){ return a; } int main(void){ return f(); }",
            "void v(void){} int main(void){ int x = 1; x = v(); return 0; }",
            "int main(void){ int a[3]; a = 0; return 0; }",
            "int g(void){ } int main(void){ return 0; }",  # missing main? no: missing nothing; g defined
        ],
    )
    def test_rejects(self, src):
        if "int g(void){ }" in src:
            pytest.skip("falls through with implicit return; allowed")
        with pytest.raises(CompileError):
            compile_source(src)

    def test_missing_main(self):
        with pytest.raises(CompileError):
            compile_source("int helper(void){ return 1; }")

    def test_undefined_function_body(self):
        with pytest.raises(CompileError):
            compile_source("int ghost(int x); int main(void){ return ghost(1); }")
