#!/usr/bin/env python3
"""Design a custom TTA soft core and measure the cost of your choices.

This is the co-design loop the paper's toolchain (TCE) is built for:
start from a machine description, compile your application, look at
cycles and estimated FPGA cost, adjust the datapath, repeat.

Here we build a 4-bus TTA with two partitioned register files from
scratch (no preset), validate it, and compare it against the stock
m-tta-1 and m-tta-2 design points on a small FIR filter.

Run:  python examples/custom_core.py
"""

from repro import build_machine, compile_for_machine, compile_source, run_compiled, synthesize
from repro.isa.operations import ALU_OPS, CU_OPS, LSU_OPS, OpKind
from repro.machine import Bus, FunctionUnit, Machine, RegisterFile, validate_machine
from repro.machine.machine import MachineStyle

FIR = """
int x[96];
int h[8] = { 3, -1, 4, 1, -5, 9, 2, -6 };
int y[88];

int main(void)
{
    int n, k, acc;
    for (n = 0; n < 96; n++)
        x[n] = (n * 13) % 256 - 128;
    for (n = 0; n < 88; n++) {
        acc = 0;
        for (k = 0; k < 8; k++)
            acc += x[n + k] * h[k];
        y[n] = acc >> 6;
    }
    acc = 0;
    for (n = 0; n < 88; n++)
        acc ^= y[n] & 0xFFFF;
    return acc & 0xFF;
}
"""


def build_custom_tta() -> Machine:
    """A 4-bus TTA with two small 1r1w register files."""
    alu = FunctionUnit("ALU0", OpKind.ALU, frozenset(ALU_OPS))
    lsu = FunctionUnit("LSU0", OpKind.LSU, frozenset(LSU_OPS))
    cu = FunctionUnit("CU", OpKind.CU, frozenset(CU_OPS))
    rf0 = RegisterFile("RF0", 32, read_ports=1, write_ports=1)
    rf1 = RegisterFile("RF1", 32, read_ports=1, write_ports=1)

    sources = frozenset(
        {"IMM", alu.result_port, lsu.result_port, cu.result_port,
         rf0.read_endpoint, rf1.read_endpoint}
    )
    destinations = frozenset(
        {alu.trigger_port, alu.operand_port, lsu.trigger_port, lsu.operand_port,
         cu.trigger_port, cu.operand_port, rf0.write_endpoint, rf1.write_endpoint}
    )
    buses = tuple(Bus(i, sources, destinations) for i in range(4))

    machine = Machine(
        name="custom-tta-4",
        style=MachineStyle.TTA,
        issue_width=1,
        function_units=(alu, lsu),
        control_unit=cu,
        register_files=(rf0, rf1),
        buses=buses,
        simm_bits=7,
        description="custom 4-bus TTA with two partitioned 1r1w RFs",
    )
    validate_machine(machine)
    return machine


def main() -> None:
    module = compile_source(FIR)
    machines = [build_machine("m-tta-1"), build_custom_tta(), build_machine("m-tta-2")]

    print(f"{'machine':14s} {'buses':>5s} {'cycles':>8s} {'LUTs':>6s} "
          f"{'fmax':>7s} {'runtime':>9s}")
    for machine in machines:
        compiled = compile_for_machine(module, machine)
        result = run_compiled(compiled, check_connectivity=True)
        report = synthesize(machine)
        runtime_us = result.cycles / report.fmax_mhz
        print(
            f"{machine.name:14s} {len(machine.buses):5d} {result.cycles:8d} "
            f"{report.resources.core_luts:6d} {report.fmax_mhz:5.0f}MHz "
            f"{runtime_us:7.1f}us  (exit={result.exit_code})"
        )

    print("\nThe 4-bus custom point should land between the 3-bus m-tta-1")
    print("and the 6-bus m-tta-2 in both cycles and LUTs -- the area/")
    print("performance dial the paper's Fig. 6 sweeps.")


if __name__ == "__main__":
    main()
