#!/usr/bin/env python3
"""Look inside the compiler: what the TTA programming freedoms do.

Compiles a small dependence-heavy function for m-vliw-2 and m-tta-2 and
shows (a) the scheduled TTA move code of the hottest block, and (b) the
transport statistics that explain the cycle difference: how many operand
reads were software-bypassed FU-to-FU and how many register-file
accesses the TTA schedule eliminated relative to the VLIW one.

Run:  python examples/inspect_schedule.py
"""

from repro import build_machine, compile_for_machine, compile_source, run_compiled
from repro.backend.program import TTAInstr

SOURCE = """
int main(void)
{
    int i;
    int a = 1;
    int b = 2;
    int c = 0;
    for (i = 0; i < 50; i++) {
        /* a long dependence chain: each op feeds the next */
        a = a * 3 + b;
        b = (b ^ a) + (a >> 2);
        c += a & b;
    }
    return c & 0xFF;
}
"""


def main() -> None:
    module = compile_source(SOURCE)

    vliw = compile_for_machine(module, build_machine("m-vliw-2"))
    vliw_result = run_compiled(vliw)
    tta = compile_for_machine(module, build_machine("m-tta-2"))
    tta_result = run_compiled(tta)

    print("cycle counts on the same source, same compiler:")
    print(f"  m-vliw-2: {vliw_result.cycles:6d} cycles (exit {vliw_result.exit_code})")
    print(f"  m-tta-2 : {tta_result.cycles:6d} cycles (exit {tta_result.exit_code})")
    print(f"  TTA speedup: {vliw_result.cycles / tta_result.cycles:.2f}x")
    print()
    print("TTA transport statistics (whole run):")
    print(f"  moves executed : {tta_result.moves}")
    print(f"  FU triggers    : {tta_result.triggers}")
    print(f"  bypassed reads : {tta_result.bypass_reads} (operand moves fed "
          f"directly FU->FU, skipping the RF)")
    print(f"  RF reads       : {tta_result.rf_reads}")
    print(f"  RF writes      : {tta_result.rf_writes}")
    print()

    print("move code of the first busy instruction words:")
    shown = 0
    for address, instr in enumerate(tta.program.instrs):
        if isinstance(instr, TTAInstr) and len(instr.moves) >= 3:
            print(f"  @{address}:")
            for move in instr.moves:
                print(f"    {move!r}")
            shown += 1
            if shown == 4:
                break


if __name__ == "__main__":
    main()
