#!/usr/bin/env python3
"""Shrink a TTA program image with dictionary compression.

The paper's conclusion proposes instruction compression as the fix for
the TTA's main drawback (wide instructions).  This example compiles one
kernel for the 2-issue design points and shows the image sizes before
and after the two dictionary schemes of `repro.compress` — including the
dictionary storage itself, so the comparison is honest.

Run:  python examples/compression.py [kernel]      (default: sha)
"""

import sys

from repro import build_machine, compile_for_machine, encode_machine
from repro.compress import compress_program, per_slot_compression
from repro.kernels import KERNELS, compile_kernel


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "sha"
    if kernel not in KERNELS:
        raise SystemExit(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    module = compile_kernel(kernel)

    print(f"program image sizes for kernel '{kernel}' (kbit, incl. dictionaries)")
    print(f"{'machine':10s} {'raw':>8s} {'full-dict':>10s} {'per-slot':>9s} {'best ratio':>11s}")
    raw_sizes = {}
    best_sizes = {}
    for name in ("m-vliw-2", "p-vliw-2", "m-tta-2", "p-tta-2", "bm-tta-2"):
        machine = build_machine(name)
        compiled = compile_for_machine(module, machine)
        width = encode_machine(machine).instruction_width
        raw = compiled.instruction_count * width
        full = compress_program(compiled.program)
        slot = per_slot_compression(compiled.program)
        best = min(full.total_bits, slot.total_bits)
        raw_sizes[name] = raw
        best_sizes[name] = best
        print(
            f"{name:10s} {raw / 1000:8.1f} {full.total_bits / 1000:10.1f} "
            f"{slot.total_bits / 1000:9.1f} {best / raw:10.2f}"
        )

    print()
    print("TTA vs VLIW image size, before and after compression:")
    before = raw_sizes["m-tta-2"] / raw_sizes["m-vliw-2"]
    after = best_sizes["m-tta-2"] / raw_sizes["m-vliw-2"]
    print(f"  m-tta-2 / m-vliw-2 (raw)        : {before:.2f}x")
    print(f"  m-tta-2 compressed / m-vliw-2   : {after:.2f}x")
    print("The compressed TTA image is competitive with the uncompressed")
    print("VLIW image — the paper's future-work conjecture, measured.")


if __name__ == "__main__":
    main()
