#!/usr/bin/env python3
"""Reproduce the paper's design-space picture on a single kernel.

Sweeps all thirteen design points over one CHStone-like kernel and
prints the Fig.-6-style performance/area landscape: cycles, estimated
fmax, wall-clock runtime and core LUTs, normalised like the paper.

Run:  python examples/design_space.py [kernel]     (default: sha)
"""

import sys

from repro import build_machine, compile_for_machine, preset_names, run_compiled, synthesize
from repro.kernels import KERNELS, compile_kernel


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "sha"
    if kernel not in KERNELS:
        raise SystemExit(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    module = compile_kernel(kernel)

    print(f"design-space sweep on kernel '{kernel}'")
    print(f"{'machine':10s} {'cycles':>9s} {'fmax':>7s} {'runtime':>9s} "
          f"{'LUTs':>6s} {'perf/area':>10s}")
    measurements = []
    for name in preset_names():
        machine = build_machine(name)
        compiled = compile_for_machine(module, machine)
        result = run_compiled(compiled)
        assert result.exit_code == 0, f"{kernel} failed on {name}"
        report = synthesize(machine)
        runtime_us = result.cycles / report.fmax_mhz
        measurements.append((name, result.cycles, report.fmax_mhz, runtime_us,
                             report.resources.core_luts))

    best_inverse = max(1.0 / (m[3] * m[4]) for m in measurements)
    for name, cycles, fmax, runtime_us, luts in measurements:
        score = (1.0 / (runtime_us * luts)) / best_inverse
        bar = "#" * int(score * 40)
        print(f"{name:10s} {cycles:9d} {fmax:5.0f}MHz {runtime_us:7.1f}us "
              f"{luts:6d} {bar}")

    print("\nperf/area bars: longer is better (1 / (runtime x LUTs),")
    print("normalised to the best point).  Expect the 1- and 2-issue TTAs")
    print("on top, as in the paper's Fig. 6.")


if __name__ == "__main__":
    main()
