#!/usr/bin/env python3
"""Quickstart: compile one MiniC program for three very different soft
cores and compare cycle counts, program sizes and estimated silicon.

Run:  python examples/quickstart.py
"""

from repro import (
    build_machine,
    compile_for_machine,
    compile_source,
    encode_machine,
    run_compiled,
    synthesize,
)

SOURCE = """
/* dot product with a twist: saturating accumulation */
int a[64];
int b[64];

int sat_add(int x, int y)
{
    int s = x + y;
    if (x > 0 && y > 0 && s < 0) return 2147483647;
    if (x < 0 && y < 0 && s >= 0) return -2147483647 - 1;
    return s;
}

int main(void)
{
    int i;
    int acc = 0;
    for (i = 0; i < 64; i++) {
        a[i] = i * 3 - 50;
        b[i] = 100 - i;
    }
    for (i = 0; i < 64; i++)
        acc = sat_add(acc, a[i] * b[i]);
    return acc & 0xFF;
}
"""


def main() -> None:
    module = compile_source(SOURCE)

    print(f"{'machine':10s} {'exit':>5s} {'cycles':>8s} {'program':>9s} "
          f"{'fmax':>7s} {'LUTs':>6s} {'runtime':>9s}")
    for name in ("mblaze-5", "m-vliw-2", "m-tta-2"):
        machine = build_machine(name)
        compiled = compile_for_machine(module, machine)
        result = run_compiled(compiled)
        encoding = encode_machine(machine)
        report = synthesize(machine)
        bits = compiled.instruction_count * encoding.instruction_width
        runtime_us = result.cycles / report.fmax_mhz
        print(
            f"{name:10s} {result.exit_code:5d} {result.cycles:8d} "
            f"{bits / 1000:7.1f}kb {report.fmax_mhz:5.0f}MHz "
            f"{report.resources.core_luts:6d} {runtime_us:7.1f}us"
        )

    print("\nThe dual-issue TTA should finish in the fewest cycles: its")
    print("scheduler bypasses FU-to-FU and skips dead register writes,")
    print("which is the effect the paper quantifies.")


if __name__ == "__main__":
    main()
